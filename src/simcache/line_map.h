#ifndef CATDB_SIMCACHE_LINE_MAP_H_
#define CATDB_SIMCACHE_LINE_MAP_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace catdb::simcache {

/// Open-addressing hash map from cache-line number to a uint64_t value,
/// built for the hierarchy's in-flight prefetch bookkeeping: the lookup is
/// on the per-access hot path (usually a miss), entries churn quickly, and
/// the population stays small. Linear probing over a power-of-two slot
/// array with Fibonacci hashing; deletion uses backward shifting, so there
/// are no tombstones and unsuccessful probes stop at the first empty slot.
///
/// Keys are stored biased by +1 so slot 0 means "empty"; line number
/// ~0 (2^64 - 1) is therefore not storable — unreachable for line indices,
/// which are byte addresses >> 6.
class LineMap {
 public:
  LineMap() { Reset(kInitialSlots); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns a pointer to the value for `key`, or nullptr if absent. The
  /// pointer is invalidated by any mutating call.
  uint64_t* Find(uint64_t key) {
    if (size_ == 0) return nullptr;
    const uint64_t biased = key + 1;
    for (size_t i = SlotOf(key);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.biased_key == biased) return &s.value;
      if (s.biased_key == 0) return nullptr;
    }
  }

  /// Inserts or overwrites the value for `key`.
  void Assign(uint64_t key, uint64_t value) {
    if ((size_ + 1) * 4 > slots_.size() * 3) Grow();
    const uint64_t biased = key + 1;
    CATDB_DCHECK(biased != 0);
    for (size_t i = SlotOf(key);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.biased_key == biased) {
        s.value = value;
        return;
      }
      if (s.biased_key == 0) {
        s.biased_key = biased;
        s.value = value;
        size_ += 1;
        return;
      }
    }
  }

  /// Removes `key` if present; returns true if it was.
  bool Erase(uint64_t key) {
    if (size_ == 0) return false;
    const uint64_t biased = key + 1;
    for (size_t i = SlotOf(key);; i = (i + 1) & mask_) {
      if (slots_[i].biased_key == biased) {
        EraseAt(i);
        return true;
      }
      if (slots_[i].biased_key == 0) return false;
    }
  }

  /// Removes `key` if present, storing its value in `*value` first: the
  /// find-then-erase pattern of the hierarchy's pending-prefetch consume in
  /// one probe chain instead of two. Returns true if the key was present;
  /// `*value` is untouched otherwise.
  bool Take(uint64_t key, uint64_t* value) {
    if (size_ == 0) return false;
    const uint64_t biased = key + 1;
    for (size_t i = SlotOf(key);; i = (i + 1) & mask_) {
      if (slots_[i].biased_key == biased) {
        *value = slots_[i].value;
        EraseAt(i);
        return true;
      }
      if (slots_[i].biased_key == 0) return false;
    }
  }

  /// Removes every entry; keeps the current capacity.
  void Clear() {
    if (size_ == 0) return;
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
  }

 private:
  struct Slot {
    uint64_t biased_key = 0;  // key + 1; 0 = empty
    uint64_t value = 0;
  };

  static constexpr size_t kInitialSlots = 64;

  // Empties slot `i` by backward-shift deletion: pull later probe-chain
  // members into the hole so unsuccessful lookups can keep stopping at
  // empty slots.
  void EraseAt(size_t i) {
    size_t hole = i;
    for (size_t j = (hole + 1) & mask_;; j = (j + 1) & mask_) {
      const uint64_t bk = slots_[j].biased_key;
      if (bk == 0) break;
      const size_t home = SlotOf(bk - 1);
      // The element at j may fill the hole iff its home position does not
      // lie in the (cyclic) open interval (hole, j] — i.e. moving it to
      // `hole` keeps it at or after its home slot.
      const size_t dist_hole = (j - hole) & mask_;
      const size_t dist_home = (j - home) & mask_;
      if (dist_home >= dist_hole) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole] = Slot{};
    size_ -= 1;
  }

  size_t SlotOf(uint64_t key) const {
    // Fibonacci hashing: sequential line numbers (the common prefetch
    // pattern) spread over the table instead of clustering.
    return static_cast<size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_) &
           mask_;
  }

  void Reset(size_t slots) {
    slots_.assign(slots, Slot{});
    mask_ = slots - 1;
    shift_ = 64;
    while (slots > 1) {
      slots >>= 1;
      shift_ -= 1;
    }
    size_ = 0;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    Reset(old.size() * 2);
    for (const Slot& s : old) {
      if (s.biased_key != 0) Assign(s.biased_key - 1, s.value);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t mask_ = 0;
  uint32_t shift_ = 64;
};

}  // namespace catdb::simcache

#endif  // CATDB_SIMCACHE_LINE_MAP_H_
