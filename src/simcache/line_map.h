#ifndef CATDB_SIMCACHE_LINE_MAP_H_
#define CATDB_SIMCACHE_LINE_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace catdb::simcache {

/// Open-addressing hash map from cache-line number to a uint64_t value,
/// built for the hierarchy's in-flight prefetch bookkeeping: the lookup is
/// on the per-access hot path (usually a miss), entries churn quickly, and
/// the population stays small.
///
/// Layout: Robin-Hood linear probing over a power-of-two slot array with
/// Fibonacci hashing and a hard displacement bound. Insertion keeps every
/// probe chain sorted by displacement (an arriving key that is further from
/// its home slot than the resident "robs" the slot and the resident moves
/// on), which gives the property the hot path needs: an unsuccessful lookup
/// can stop as soon as it meets a slot whose resident is closer to home
/// than the probe is long — no full-chain walk, no tombstones. Deletion
/// backward-shifts the chain, which preserves the invariant. If an insert
/// would ever displace past kMaxDisplacement the table grows and the insert
/// restarts, so probe lengths are bounded by construction, not by luck.
/// The table is semantically an unordered map — iteration order is never
/// exposed — so the layout cannot perturb bit-identical simulation results
/// (pinned by the property tests against a reference map model).
///
/// Keys are stored biased by +1 so slot 0 means "empty"; line number
/// ~0 (2^64 - 1) is therefore not storable — unreachable for line indices,
/// which are byte addresses >> 6.
class LineMap {
 public:
  LineMap() { Reset(kInitialSlots); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns a pointer to the value for `key`, or nullptr if absent. The
  /// pointer is invalidated by any mutating call.
  uint64_t* Find(uint64_t key) {
    if (size_ == 0) return nullptr;
    const uint64_t biased = key + 1;
    size_t dist = 0;
    for (size_t i = SlotOf(key);; i = (i + 1) & mask_, ++dist) {
      Slot& s = slots_[i];
      if (s.biased_key == biased) return &s.value;
      // Empty slot, or a resident closer to home than this probe is long:
      // the Robin-Hood invariant says the key cannot live further down.
      if (s.biased_key == 0 || DisplacementOf(s.biased_key, i) < dist) {
        return nullptr;
      }
    }
  }

  /// Inserts or overwrites the value for `key`.
  void Assign(uint64_t key, uint64_t value) {
    if ((size_ + 1) * 4 > slots_.size() * 3) Grow();
    uint64_t bk = key + 1;
    CATDB_DCHECK(bk != 0);
    uint64_t val = value;
    size_t dist = 0;
    size_t i = SlotOf(bk - 1);
    for (;;) {
      Slot& s = slots_[i];
      if (s.biased_key == bk) {
        // Only reachable before the first swap: a present key is met before
        // any slot the probe could rob (residents ahead of it sit at or
        // above the probe distance), and a robbed resident's key is unique
        // in the table, so it can never meet its own duplicate.
        s.value = val;
        return;
      }
      if (s.biased_key == 0) {
        s.biased_key = bk;
        s.value = val;
        size_ += 1;
        return;
      }
      if (dist > kMaxDisplacement) {
        // Displacement bound hit. The table is a complete map minus the one
        // in-flight element (the original key, or the resident the last
        // swap displaced — either way absent from the table): grow, which
        // rehashes every resident, and re-place the in-flight element in
        // the roomier table.
        Grow();
        i = SlotOf(bk - 1);
        dist = 0;
        continue;
      }
      const size_t resident_dist = DisplacementOf(s.biased_key, i);
      if (resident_dist < dist) {
        // Rob the slot: the closer-to-home resident moves on, keeping every
        // chain sorted by displacement.
        std::swap(s.biased_key, bk);
        std::swap(s.value, val);
        dist = resident_dist;
      }
      i = (i + 1) & mask_;
      ++dist;
    }
  }

  /// Removes `key` if present; returns true if it was.
  bool Erase(uint64_t key) {
    const size_t i = FindSlotIndex(key);
    if (i == kNone) return false;
    EraseAt(i);
    return true;
  }

  /// Removes `key` if present, storing its value in `*value` first: the
  /// find-then-erase pattern of the hierarchy's pending-prefetch consume in
  /// one probe chain instead of two. Returns true if the key was present;
  /// `*value` is untouched otherwise.
  bool Take(uint64_t key, uint64_t* value) {
    const size_t i = FindSlotIndex(key);
    if (i == kNone) return false;
    *value = slots_[i].value;
    EraseAt(i);
    return true;
  }

  /// Removes every entry; keeps the current capacity.
  void Clear() {
    if (size_ == 0) return;
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
  }

 private:
  struct Slot {
    uint64_t biased_key = 0;  // key + 1; 0 = empty
    uint64_t value = 0;
  };

  static constexpr size_t kInitialSlots = 64;
  static constexpr size_t kNone = ~size_t{0};
  // Hard probe-length bound. At the 3/4 load factor Robin-Hood displacements
  // concentrate near the mean probe length (~2), so 32 is effectively
  // unreachable except under adversarial key clustering — where growing is
  // the right response anyway.
  static constexpr size_t kMaxDisplacement = 32;

  // Probe distance of the resident of slot `i` from its home slot.
  size_t DisplacementOf(uint64_t biased_key, size_t i) const {
    return (i - SlotOf(biased_key - 1)) & mask_;
  }

  // Slot index holding `key`, or kNone. Shares the early-exit rule with
  // Find.
  size_t FindSlotIndex(uint64_t key) const {
    if (size_ == 0) return kNone;
    const uint64_t biased = key + 1;
    size_t dist = 0;
    for (size_t i = SlotOf(key);; i = (i + 1) & mask_, ++dist) {
      const Slot& s = slots_[i];
      if (s.biased_key == biased) return i;
      if (s.biased_key == 0 || DisplacementOf(s.biased_key, i) < dist) {
        return kNone;
      }
    }
  }

  // Empties slot `i` by backward-shift deletion: pull later probe-chain
  // members one slot toward their home until a chain break (empty slot or a
  // resident already at home). Keeps displacement-sorted chains sorted and
  // leaves no tombstones.
  void EraseAt(size_t i) {
    size_t hole = i;
    for (size_t j = (hole + 1) & mask_;; j = (j + 1) & mask_) {
      Slot& s = slots_[j];
      if (s.biased_key == 0 || DisplacementOf(s.biased_key, j) == 0) break;
      slots_[hole] = s;
      hole = j;
    }
    slots_[hole] = Slot{};
    size_ -= 1;
  }

  size_t SlotOf(uint64_t key) const {
    // Fibonacci hashing: sequential line numbers (the common prefetch
    // pattern) spread over the table instead of clustering.
    return static_cast<size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_) &
           mask_;
  }

  void Reset(size_t slots) {
    slots_.assign(slots, Slot{});
    mask_ = slots - 1;
    shift_ = 64;
    while (slots > 1) {
      slots >>= 1;
      shift_ -= 1;
    }
    size_ = 0;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    Reset(old.size() * 2);
    for (const Slot& s : old) {
      if (s.biased_key != 0) Assign(s.biased_key - 1, s.value);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t mask_ = 0;
  uint32_t shift_ = 64;
};

}  // namespace catdb::simcache

#endif  // CATDB_SIMCACHE_LINE_MAP_H_
