#ifndef CATDB_HARNESS_SWEEP_RUNNER_H_
#define CATDB_HARNESS_SWEEP_RUNNER_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/report.h"
#include "obs/trace.h"
#include "sim/machine.h"

namespace catdb::harness {

/// Recording surface handed to one sweep cell while its body executes on a
/// pool worker. A *cell* is a fully self-contained unit of simulation work:
/// it builds its own sim::Machine (and datasets, queries, RNG state — all
/// seeded by the cell description, nothing shared with other cells), runs,
/// and records its output into a private report shard. Because a cell
/// depends only on its description, its results are identical no matter
/// which host thread runs it or in what order cells complete.
class SweepCell {
 public:
  size_t index() const { return index_; }
  const std::string& name() const { return name_; }

  /// Builds this cell's private simulated machine (event tracing enabled
  /// when the sweep was asked for a trace). Owned by the cell: it stays
  /// alive after the body returns until its trace has been harvested, then
  /// it is freed — so a wide sweep does not hold every cell's hierarchy in
  /// memory at once.
  sim::Machine& MakeMachine(
      const sim::MachineConfig& config = sim::MachineConfig{});

  /// This cell's report shard. After the sweep, shards are concatenated
  /// into SweepRunner::report() in cell-index order, so the merged report
  /// is byte-identical regardless of thread count or completion order.
  obs::RunReportWriter& report() { return shard_; }

  /// True when the sweep was asked for an event trace (--trace-out).
  bool tracing() const { return tracing_; }

 private:
  friend class SweepRunner;

  SweepCell(size_t index, std::string name, bool tracing,
            const std::string& benchmark)
      : index_(index),
        name_(std::move(name)),
        tracing_(tracing),
        shard_(benchmark) {}

  size_t index_;
  std::string name_;
  bool tracing_;
  obs::RunReportWriter shard_;
  std::vector<std::unique_ptr<sim::Machine>> machines_;
  std::vector<obs::TraceEvent> trace_events_;  // harvested after the body
  std::function<void(SweepCell&)> body_;
};

/// Fans independent simulation cells out across a ThreadPool and gathers
/// their outputs by cell index. The contract: given the same cell
/// descriptions, report() and trace_events() are byte-identical for every
/// `jobs` value — parallelism across simulations never perturbs the
/// simulations themselves (each cell owns its machine and RNG state) nor
/// the output order (gathering is by index, not completion order).
class SweepRunner {
 public:
  struct Options {
    /// Host threads; 0 selects ThreadPool::DefaultJobs() (CATDB_JOBS env
    /// override, else hardware concurrency).
    unsigned jobs = 0;
    /// Enable per-cell event tracing (cells' machines record into their
    /// own buffers; trace_events() concatenates them by cell index).
    bool tracing = false;
  };

  explicit SweepRunner(std::string benchmark, const Options& options);
  explicit SweepRunner(std::string benchmark)
      : SweepRunner(std::move(benchmark), Options{}) {}

  SweepRunner(SweepRunner&&) = default;
  SweepRunner& operator=(SweepRunner&&) = delete;

  /// Registers a cell; bodies run concurrently during Run(). Returns the
  /// cell index (also its rank in the merged outputs).
  size_t AddCell(std::string name, std::function<void(SweepCell&)> body);

  /// Executes every cell across `jobs()` host threads, then merges the
  /// per-cell report shards and trace buffers in cell-index order.
  /// Rethrows the first cell failure (remaining cells still complete).
  void Run();

  unsigned jobs() const { return jobs_; }
  size_t num_cells() const { return cells_.size(); }
  bool tracing() const { return tracing_; }

  /// The merged report (valid after Run()); callers may append further
  /// entries computed from gathered results before writing it out.
  obs::RunReportWriter& report();

  /// All cells' trace events, concatenated in cell-index order (valid
  /// after Run(); empty when tracing was off).
  const std::vector<obs::TraceEvent>& trace_events() const;

 private:
  std::string benchmark_;
  unsigned jobs_;
  bool tracing_;
  bool ran_ = false;
  std::vector<std::unique_ptr<SweepCell>> cells_;
  obs::RunReportWriter report_;
  std::vector<obs::TraceEvent> trace_events_;
};

}  // namespace catdb::harness

#endif  // CATDB_HARNESS_SWEEP_RUNNER_H_
