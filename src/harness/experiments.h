#ifndef CATDB_HARNESS_EXPERIMENTS_H_
#define CATDB_HARNESS_EXPERIMENTS_H_

// Shared building blocks of the paper's evaluation experiments, factored out
// of bench/bench_util.h so that both the hand-coded figure benches and the
// scenario executor (src/plan/scenario_exec.h) run the *same* code paths:
//  * the standard core split and measurement horizons,
//  * the isolated cache-size sweep primitive (WarmIterationCycles),
//  * the four-run A/B pair experiment (RunPair / AddPairResult).
// Byte-identical reports between a hand-coded bench and its scenario-file
// port reduce to both sides calling these helpers with equal inputs.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.h"
#include "engine/partitioning_policy.h"
#include "engine/runner.h"
#include "obs/report.h"
#include "sim/machine.h"

namespace catdb::harness {

/// Default core split: two streams of four job workers each. Isolated
/// baselines use the same four cores as the concurrent run, so normalized
/// throughput isolates cache/bandwidth interference (DESIGN.md §4.6).
inline const std::vector<uint32_t> kCoresA = {0, 1, 2, 3};
inline const std::vector<uint32_t> kCoresB = {4, 5, 6, 7};

/// Simulated-cycle horizon for throughput runs (~90 ms at 2.2 GHz; plays
/// the role of the paper's 90 s measurement window at simulation scale).
inline constexpr uint64_t kDefaultHorizon = 200'000'000;

/// Horizon used under --smoke: long enough to cross several policy
/// intervals, short enough for CI.
inline constexpr uint64_t kSmokeHorizon = 20'000'000;

/// The cache-size axis used by the isolated sweeps (as a fraction of the
/// 20-way LLC, mirroring the paper's 5..55 MiB axis).
inline const std::vector<uint32_t> kWaySweep = {20, 18, 16, 14, 12, 10,
                                                8,  6,  4,  2,  1};

/// Way count of the unrestricted LLC — the normalization baseline of the
/// isolated sweeps. Sweep benches compute the full-LLC baseline explicitly
/// against this value instead of assuming kWaySweep starts with it.
inline uint32_t FullLlcWays(const sim::Machine& machine) {
  return machine.config().hierarchy.llc.num_ways;
}

/// Result of the standard 2-query experiment the paper's evaluation figures
/// are built from: both queries isolated, concurrent, and concurrent with a
/// given partitioning policy.
struct PairResult {
  double iso_a = 0;      // iterations, query A isolated
  double iso_b = 0;      // iterations, query B isolated
  double conc_a = 0;     // iterations, A when co-running (no partitioning)
  double conc_b = 0;
  double part_a = 0;     // iterations, A when co-running with partitioning
  double part_b = 0;
  engine::RunReport conc_report;
  engine::RunReport part_report;

  double norm_conc_a() const { return Normalized(conc_a, iso_a, "A"); }
  double norm_conc_b() const { return Normalized(conc_b, iso_b, "B"); }
  double norm_part_a() const { return Normalized(part_a, iso_a, "A"); }
  double norm_part_b() const { return Normalized(part_b, iso_b, "B"); }

 private:
  /// Guarded normalization: a zero-iteration isolated baseline (possible at
  /// --smoke horizons with heavy queries) would divide to inf/NaN, which
  /// JsonWriter serializes as null — silent report corruption. Fail loudly
  /// instead.
  static double Normalized(double concurrent, double isolated,
                           const char* which) {
    if (!(isolated > 0)) {
      std::fprintf(stderr,
                   "bench error: isolated baseline %s finished 0 iterations "
                   "(horizon too short); cannot normalize — rerun with a "
                   "longer horizon\n",
                   which);
      std::exit(1);
    }
    return concurrent / isolated;
  }
};

/// Runs the A/B pair in all four configurations. `partitioned` is the
/// policy used for the partitioned run ('enabled' is forced on); isolated
/// and concurrent baselines run with partitioning disabled.
inline PairResult RunPair(sim::Machine* machine, engine::Query* a,
                          engine::Query* b,
                          const engine::PolicyConfig& partitioned,
                          uint64_t horizon = kDefaultHorizon) {
  engine::PolicyConfig off;
  engine::PolicyConfig on = partitioned;
  on.enabled = true;

  PairResult r;
  r.iso_a = engine::RunWorkload(machine, {{a, kCoresA}}, horizon, off)
                .streams[0]
                .iterations;
  r.iso_b = engine::RunWorkload(machine, {{b, kCoresB}}, horizon, off)
                .streams[0]
                .iterations;
  r.conc_report = engine::RunWorkload(
      machine, {{a, kCoresA}, {b, kCoresB}}, horizon, off);
  r.conc_a = r.conc_report.streams[0].iterations;
  r.conc_b = r.conc_report.streams[1].iterations;
  r.part_report = engine::RunWorkload(
      machine, {{a, kCoresA}, {b, kCoresB}}, horizon, on);
  r.part_a = r.part_report.streams[0].iterations;
  r.part_b = r.part_report.streams[1].iterations;
  return r;
}

/// Records one RunPair outcome into a run report: the concurrent and
/// partitioned RunReports plus the four normalized throughputs as scalars.
inline void AddPairResult(obs::RunReportWriter* report,
                          const std::string& name, const PairResult& r) {
  report->AddRun(name + "/concurrent", r.conc_report);
  report->AddRun(name + "/partitioned", r.part_report);
  report->AddScalar(name + "/norm_conc_a", r.norm_conc_a());
  report->AddScalar(name + "/norm_conc_b", r.norm_conc_b());
  report->AddScalar(name + "/norm_part_a", r.norm_part_a());
  report->AddScalar(name + "/norm_part_b", r.norm_part_b());
}

/// Isolated warm per-iteration latency under an instance-wide cache limit
/// (the measurement method of Figures 4-6: "we limit the size of the
/// available LLC ... and measure end-to-end response time"). Runs
/// `iterations` and returns the cycles of the last iteration.
inline uint64_t WarmIterationCycles(sim::Machine* machine,
                                    engine::Query* query, uint32_t ways,
                                    uint64_t iterations = 3) {
  engine::PolicyConfig cfg;
  cfg.instance_ways = ways;
  auto rep =
      engine::RunQueryIterations(machine, query, kCoresA, iterations, cfg);
  const auto& clocks = rep.streams[0].iteration_end_clocks;
  CATDB_CHECK(!clocks.empty());
  // A single iteration has no warm predecessor: its cycles run from 0, so
  // the subtraction below would index out of bounds — return it directly.
  if (clocks.size() == 1) return clocks[0];
  return clocks.back() - clocks[clocks.size() - 2];
}

}  // namespace catdb::harness

#endif  // CATDB_HARNESS_EXPERIMENTS_H_
