#ifndef CATDB_HARNESS_THREAD_POOL_H_
#define CATDB_HARNESS_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace catdb::harness {

/// Fixed-size work-stealing thread pool for running independent simulation
/// cells across host threads.
///
/// Each worker owns a deque: it pops its own work newest-first (good
/// locality for nested submissions) and steals oldest-first from a victim
/// when it runs dry; external submissions land in a shared injector queue.
/// The pool makes no ordering promises — callers that need deterministic
/// output gather results by index (see SweepRunner), never by completion
/// order.
///
/// Tasks may submit further tasks from inside the pool (nested submit goes
/// to the submitting worker's own deque). Wait() blocks the calling thread
/// until every task — including nested ones — has finished, then rethrows
/// the first exception any task raised; the remaining tasks still run to
/// completion. Wait() must be called from outside the pool's workers.
class ThreadPool {
 public:
  /// `num_threads` == 0 selects DefaultJobs().
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Callable from any thread, including pool workers.
  void Submit(std::function<void()> fn);

  /// Blocks until all submitted tasks (and their nested submissions) have
  /// completed, then rethrows the first captured task exception, if any.
  /// The pool stays usable afterwards.
  void Wait();

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Host-parallelism default: the CATDB_JOBS environment variable when set
  /// to a positive integer, otherwise std::thread::hardware_concurrency()
  /// (minimum 1).
  static unsigned DefaultJobs();

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
  };

  void WorkerLoop(unsigned index);
  // Pops the next task for worker `self` (own deque back, injector front,
  // then steal a victim's front). Caller must hold mu_.
  bool TakeLocked(unsigned self, std::function<void()>* out);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<Worker> workers_;
  std::deque<std::function<void()>> injector_;
  std::vector<std::thread> threads_;
  size_t pending_ = 0;  // submitted but not yet finished
  bool stop_ = false;

  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace catdb::harness

#endif  // CATDB_HARNESS_THREAD_POOL_H_
