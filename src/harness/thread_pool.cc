#include "harness/thread_pool.h"

#include <cstdlib>
#include <utility>

#include "common/check.h"

namespace catdb::harness {

namespace {
// Identifies the pool (and worker slot) the current thread belongs to, so
// Submit can route nested submissions to the submitting worker's own deque.
thread_local ThreadPool* tls_pool = nullptr;
thread_local unsigned tls_worker = 0;
}  // namespace

unsigned ThreadPool::DefaultJobs() {
  if (const char* env = std::getenv("CATDB_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : workers_(num_threads == 0 ? DefaultJobs() : num_threads) {
  threads_.reserve(workers_.size());
  for (unsigned i = 0; i < workers_.size(); ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Drain outstanding work first so tasks never run against a destroyed
    // pool; exceptions not collected via Wait() are dropped here.
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  CATDB_CHECK(fn != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    CATDB_CHECK(!stop_);
    ++pending_;
    if (tls_pool == this) {
      workers_[tls_worker].deque.push_back(std::move(fn));
    } else {
      injector_.push_back(std::move(fn));
    }
  }
  work_cv_.notify_one();
}

bool ThreadPool::TakeLocked(unsigned self, std::function<void()>* out) {
  Worker& me = workers_[self];
  if (!me.deque.empty()) {
    *out = std::move(me.deque.back());
    me.deque.pop_back();
    return true;
  }
  if (!injector_.empty()) {
    *out = std::move(injector_.front());
    injector_.pop_front();
    return true;
  }
  for (unsigned k = 1; k < workers_.size(); ++k) {
    Worker& victim = workers_[(self + k) % workers_.size()];
    if (!victim.deque.empty()) {
      *out = std::move(victim.deque.front());
      victim.deque.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned index) {
  tls_pool = this;
  tls_worker = index;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::function<void()> task;
    if (TakeLocked(index, &task)) {
      lock.unlock();
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> elock(error_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      task = nullptr;  // release captures before touching pending_
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

void ThreadPool::Wait() {
  CATDB_CHECK(tls_pool != this);  // deadlock guard: not from a pool worker
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> elock(error_mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace catdb::harness
