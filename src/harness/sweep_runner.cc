#include "harness/sweep_runner.h"

#include <utility>

#include "common/check.h"
#include "harness/thread_pool.h"

namespace catdb::harness {

sim::Machine& SweepCell::MakeMachine(const sim::MachineConfig& config) {
  machines_.push_back(std::make_unique<sim::Machine>(config));
  sim::Machine* machine = machines_.back().get();
  if (tracing_) machine->EnableTracing();
  return *machine;
}

SweepRunner::SweepRunner(std::string benchmark, const Options& options)
    : benchmark_(std::move(benchmark)),
      jobs_(options.jobs == 0 ? ThreadPool::DefaultJobs() : options.jobs),
      tracing_(options.tracing),
      report_(benchmark_) {}

size_t SweepRunner::AddCell(std::string name,
                            std::function<void(SweepCell&)> body) {
  CATDB_CHECK(!ran_);
  CATDB_CHECK(body != nullptr);
  const size_t index = cells_.size();
  // make_unique cannot reach the private constructor; wrap the raw new.
  cells_.emplace_back(
      new SweepCell(index, std::move(name), tracing_, benchmark_));
  cells_.back()->body_ = std::move(body);
  return index;
}

void SweepRunner::Run() {
  CATDB_CHECK(!ran_);
  {
    ThreadPool pool(jobs_);
    for (const std::unique_ptr<SweepCell>& cell_ptr : cells_) {
      SweepCell* cell = cell_ptr.get();
      pool.Submit([cell] {
        cell->body_(*cell);
        // Harvest traces while the cell's machines are still alive, then
        // free the machines (cells can be far more numerous than workers).
        for (const std::unique_ptr<sim::Machine>& m : cell->machines_) {
          if (obs::EventTrace* trace = m->trace()) {
            const std::vector<obs::TraceEvent> events = trace->Events();
            cell->trace_events_.insert(cell->trace_events_.end(),
                                       events.begin(), events.end());
          }
        }
        cell->machines_.clear();
      });
    }
    pool.Wait();  // rethrows the first cell failure
  }
  ran_ = true;
  for (const std::unique_ptr<SweepCell>& cell : cells_) {
    report_.MergeFrom(std::move(cell->shard_));
    trace_events_.insert(trace_events_.end(), cell->trace_events_.begin(),
                         cell->trace_events_.end());
    cell->trace_events_.clear();
  }
}

obs::RunReportWriter& SweepRunner::report() {
  CATDB_CHECK(ran_);
  return report_;
}

const std::vector<obs::TraceEvent>& SweepRunner::trace_events() const {
  CATDB_CHECK(ran_);
  return trace_events_;
}

}  // namespace catdb::harness
