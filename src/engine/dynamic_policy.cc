#include "engine/dynamic_policy.h"

#include <memory>

#include "cat/resctrl.h"
#include "common/bits.h"
#include "common/check.h"
#include "common/units.h"
#include "engine/job_scheduler.h"
#include "obs/trace.h"
#include "sim/epoch_executor.h"
#include "simcache/cache_geometry.h"

namespace catdb::engine {

namespace {

std::string StreamGroupName(size_t index) {
  return "stream" + std::to_string(index);
}

}  // namespace

Status ValidateDynamicPolicyConfig(const DynamicPolicyConfig& config,
                                   uint32_t llc_ways) {
  if (config.interval_cycles < 1) {
    return Status::InvalidArgument(
        "interval_cycles must be nonzero (a zero interval never advances "
        "the executor)");
  }
  if (config.polluting_ways < 1 || config.polluting_ways > llc_ways) {
    return Status::InvalidArgument(
        "polluting_ways must be in [1, llc_ways]: a zero-way CAT mask is "
        "invalid and an over-wide one exceeds the schemata width");
  }
  if (config.polluter_bandwidth_share < 0.0 ||
      config.polluter_bandwidth_share > 1.0 ||
      config.polluter_hit_ratio < 0.0 || config.polluter_hit_ratio > 1.0) {
    return Status::InvalidArgument(
        "polluter thresholds are ratios and must lie in [0, 1]");
  }
  return Status::OK();
}

DynamicClassifier::DynamicClassifier(const DynamicPolicyConfig& config,
                                     size_t num_streams)
    : config_(config),
      restricted_(num_streams, false),
      clean_streak_(num_streams, 0) {
  CATDB_CHECK(num_streams >= 1);
}

DynamicClassifier::Decision DynamicClassifier::OnInterval(
    size_t stream, double bandwidth_share, double hit_ratio,
    uint64_t lookups) {
  CATDB_CHECK(stream < restricted_.size());
  const bool polluter =
      bandwidth_share >= config_.polluter_bandwidth_share &&
      hit_ratio < config_.polluter_hit_ratio;

  Decision d;
  if (polluter) {
    // Restriction is immediate: one polluting interval tightens the mask.
    clean_streak_[stream] = 0;
    d.changed = !restricted_[stream];
    restricted_[stream] = true;
  } else if (restricted_[stream]) {
    if (lookups == 0 && bandwidth_share > 0.0) {
      // Ambiguous interval: the stream moved data but had no demand LLC
      // lookups to judge (pure prefetch fills, or it stalled behind the
      // DRAM queue and its idle hit_ratio defaults to 1.0). Not evidence
      // of polluting, but not evidence of a clean phase either — hold the
      // streak where it is.
    } else {
      // Widening requires a streak of clean intervals: one idle interval
      // must not flap the mask. unrestrict_intervals == 0 disables the
      // hysteresis (first clean interval widens, same as 1).
      clean_streak_[stream] += 1;
      const uint32_t needed =
          config_.unrestrict_intervals > 0 ? config_.unrestrict_intervals : 1;
      if (clean_streak_[stream] >= needed) {
        restricted_[stream] = false;
        clean_streak_[stream] = 0;
        d.changed = true;
      }
    }
  }
  d.restricted = restricted_[stream];
  return d;
}

DynamicRunReport RunWorkloadDynamic(sim::Machine* machine,
                                    const std::vector<StreamSpec>& specs,
                                    uint64_t horizon_cycles,
                                    const DynamicPolicyConfig& config) {
  CATDB_CHECK(machine != nullptr);
  CATDB_CHECK(!specs.empty());
  {
    const Status st = ValidateDynamicPolicyConfig(
        config, machine->config().hierarchy.llc.num_ways);
    CATDB_CHECK(st.ok());
  }

  machine->ResetForRun();
  machine->resctrl().Reset();
  cat::ResctrlFs& fs = machine->resctrl();

  // No static annotations: the CUID policy stays disabled; every stream
  // lives in its own full-mask monitoring group instead.
  JobScheduler scheduler(machine, PolicyConfig{});
  CATDB_CHECK(scheduler.SetupGroups().ok());

  // Both masks come from the policy's validated helper: the former
  // hand-rolled shifts were UB for a 64-way LLC and produced an all-zero
  // (CAT-invalid) schemata mask for polluting_ways == 0. The way counts
  // themselves were range-checked by ValidateDynamicPolicyConfig above.
  const uint32_t llc_ways = machine->config().hierarchy.llc.num_ways;
  const PartitioningPolicy& mask_policy = scheduler.policy();
  const uint64_t full_mask = mask_policy.MaskForWays(llc_ways);
  const uint64_t polluting_mask =
      mask_policy.MaskForWays(config.polluting_ways);
  CATDB_DCHECK(IsContiguousMask(full_mask));
  CATDB_DCHECK(IsContiguousMask(polluting_mask));

  DynamicRunReport result;
  std::vector<cat::ClosId> stream_clos;
  obs::IntervalSampler sampler(
      &machine->hierarchy(),
      machine->config().hierarchy.latency.dram_transfer);
  for (size_t i = 0; i < specs.size(); ++i) {
    const std::string group = StreamGroupName(i);
    CATDB_CHECK(fs.CreateGroup(group).ok());
    CATDB_CHECK(
        fs.WriteSchemata(group, cat::FormatSchemataLine(full_mask)).ok());
    for (uint32_t core : specs[i].cores) {
      scheduler.SetCoreGroupOverride(core, group);
    }
    auto clos = fs.ClosOfGroup(group);
    CATDB_CHECK(clos.ok());
    stream_clos.push_back(clos.value());
    sampler.Watch(clos.value(), group);
    result.group_names.push_back(group);
  }

  const std::unique_ptr<sim::Executor> executor = sim::MakeExecutor(machine);
  std::vector<std::unique_ptr<QueryStream>> streams;
  for (const StreamSpec& spec : specs) {
    CATDB_CHECK(spec.query != nullptr);
    streams.push_back(std::make_unique<QueryStream>(
        spec.query, spec.cores, &scheduler, spec.max_iterations));
    for (uint32_t core : spec.cores) {
      executor->Attach(core, streams.back().get());
    }
  }

  result.restricted.assign(specs.size(), false);
  result.restricted_at_interval.assign(specs.size(), 0);
  DynamicClassifier classifier(config, specs.size());

  for (uint64_t t = config.interval_cycles;; t += config.interval_cycles) {
    const uint64_t stop = t < horizon_cycles ? t : horizon_cycles;
    executor->RunUntil(stop);
    result.intervals += 1;

    // One snapshot per interval; the final interval may be shorter than
    // interval_cycles and its bandwidth share is computed over the actual
    // length (a full-interval denominator underestimated the share and let
    // polluters finish their last interval unrestricted).
    const obs::IntervalSample& sample = sampler.Sample(stop);

    for (size_t i = 0; i < specs.size(); ++i) {
      const obs::ClosIntervalSample& cs = sample.clos[i];
      const DynamicClassifier::Decision decision =
          classifier.OnInterval(i, cs.bandwidth_share, cs.hit_ratio,
                                cs.llc_hits_delta + cs.llc_misses_delta);
      if (decision.changed) {
        const uint64_t mask =
            decision.restricted ? polluting_mask : full_mask;
        CATDB_CHECK(fs.WriteSchemata(StreamGroupName(i),
                                     cat::FormatSchemataLine(mask))
                        .ok());
        result.schemata_writes += 1;
        result.restricted[i] = decision.restricted;
        if (decision.restricted && result.restricted_at_interval[i] == 0) {
          result.restricted_at_interval[i] = result.intervals;
        }
        if (obs::EventTrace* trace = machine->trace()) {
          obs::TraceEvent ev;
          ev.cycle = stop;
          ev.kind = obs::EventKind::kRestrictionFlip;
          ev.clos = stream_clos[i];
          ev.arg = decision.restricted ? 1 : 0;
          ev.arg2 = i;
          ev.label = StreamGroupName(i);
          trace->Record(std::move(ev));
        }
      }
    }
    if (stop >= horizon_cycles) break;
  }

  result.interval_series = sampler.series();
  result.report =
      CollectRunReport(machine, scheduler, streams, horizon_cycles);
  return result;
}

}  // namespace catdb::engine
