#include "engine/dynamic_policy.h"

#include <memory>

#include "cat/resctrl.h"
#include "common/bits.h"
#include "common/check.h"
#include "common/units.h"
#include "engine/job_scheduler.h"
#include "sim/executor.h"
#include "simcache/cache_geometry.h"

namespace catdb::engine {

namespace {

std::string StreamGroupName(size_t index) {
  return "stream" + std::to_string(index);
}

}  // namespace

DynamicRunReport RunWorkloadDynamic(sim::Machine* machine,
                                    const std::vector<StreamSpec>& specs,
                                    uint64_t horizon_cycles,
                                    const DynamicPolicyConfig& config) {
  CATDB_CHECK(machine != nullptr);
  CATDB_CHECK(!specs.empty());
  CATDB_CHECK(config.interval_cycles >= 1);

  machine->ResetForRun();
  machine->resctrl().Reset();
  cat::ResctrlFs& fs = machine->resctrl();

  // No static annotations: the CUID policy stays disabled; every stream
  // lives in its own full-mask monitoring group instead.
  JobScheduler scheduler(machine, PolicyConfig{});
  CATDB_CHECK(scheduler.SetupGroups().ok());

  // Both masks come from the policy's validated helper: the former
  // hand-rolled shifts were UB for a 64-way LLC and produced an all-zero
  // (CAT-invalid) schemata mask for polluting_ways == 0.
  const uint32_t llc_ways = machine->config().hierarchy.llc.num_ways;
  uint32_t polluting_ways = config.polluting_ways;
  if (polluting_ways < 1) polluting_ways = 1;
  if (polluting_ways > llc_ways) polluting_ways = llc_ways;
  const PartitioningPolicy& mask_policy = scheduler.policy();
  const uint64_t full_mask = mask_policy.MaskForWays(llc_ways);
  const uint64_t polluting_mask = mask_policy.MaskForWays(polluting_ways);
  CATDB_DCHECK(IsContiguousMask(full_mask));
  CATDB_DCHECK(IsContiguousMask(polluting_mask));

  std::vector<cat::ClosId> stream_clos;
  for (size_t i = 0; i < specs.size(); ++i) {
    const std::string group = StreamGroupName(i);
    CATDB_CHECK(fs.CreateGroup(group).ok());
    CATDB_CHECK(
        fs.WriteSchemata(group, cat::FormatSchemataLine(full_mask)).ok());
    for (uint32_t core : specs[i].cores) {
      scheduler.SetCoreGroupOverride(core, group);
    }
    auto clos = fs.ClosOfGroup(group);
    CATDB_CHECK(clos.ok());
    stream_clos.push_back(clos.value());
  }

  sim::Executor executor(machine);
  std::vector<std::unique_ptr<QueryStream>> streams;
  for (const StreamSpec& spec : specs) {
    CATDB_CHECK(spec.query != nullptr);
    streams.push_back(std::make_unique<QueryStream>(
        spec.query, spec.cores, &scheduler, spec.max_iterations));
    for (uint32_t core : spec.cores) {
      executor.Attach(core, streams.back().get());
    }
  }

  DynamicRunReport result;
  result.restricted.assign(specs.size(), false);
  result.restricted_at_interval.assign(specs.size(), 0);

  // Per-stream monitoring baselines for interval deltas.
  std::vector<uint64_t> prev_mbm(specs.size(), 0);
  std::vector<uint64_t> prev_hits(specs.size(), 0);
  std::vector<uint64_t> prev_lookups(specs.size(), 0);

  const auto& hierarchy = machine->hierarchy();
  const double channel_lines_per_interval =
      static_cast<double>(config.interval_cycles) /
      machine->config().hierarchy.latency.dram_transfer;

  for (uint64_t t = config.interval_cycles;; t += config.interval_cycles) {
    const uint64_t stop = t < horizon_cycles ? t : horizon_cycles;
    executor.RunUntil(stop);
    result.intervals += 1;

    for (size_t i = 0; i < specs.size(); ++i) {
      const auto& mon = hierarchy.clos_monitor(stream_clos[i]);
      const uint64_t mbm_delta = mon.mbm_lines - prev_mbm[i];
      const uint64_t lookups_delta = mon.llc.lookups() - prev_lookups[i];
      const uint64_t hits_delta = mon.llc.hits - prev_hits[i];
      prev_mbm[i] = mon.mbm_lines;
      prev_lookups[i] = mon.llc.lookups();
      prev_hits[i] = mon.llc.hits;

      const double bandwidth_share =
          static_cast<double>(mbm_delta) / channel_lines_per_interval;
      const double hit_ratio =
          lookups_delta == 0
              ? 1.0  // no LLC traffic: certainly not a polluter
              : static_cast<double>(hits_delta) / lookups_delta;

      const bool polluter =
          bandwidth_share >= config.polluter_bandwidth_share &&
          hit_ratio < config.polluter_hit_ratio;
      if (polluter != result.restricted[i]) {
        const uint64_t mask = polluter ? polluting_mask : full_mask;
        CATDB_CHECK(fs.WriteSchemata(StreamGroupName(i),
                                     cat::FormatSchemataLine(mask))
                        .ok());
        result.schemata_writes += 1;
        result.restricted[i] = polluter;
        if (polluter && result.restricted_at_interval[i] == 0) {
          result.restricted_at_interval[i] = result.intervals;
        }
      }
    }
    if (stop >= horizon_cycles) break;
  }

  result.report.sim_seconds = CyclesToSeconds(horizon_cycles);
  for (const auto& stream : streams) {
    StreamResult r;
    r.query_name = stream->query()->name();
    r.iterations = stream->Iterations();
    r.iterations_per_second = r.iterations / result.report.sim_seconds;
    r.iteration_end_clocks = stream->iteration_end_clocks();
    for (uint32_t core : stream->cores()) {
      r.stats += hierarchy.core_stats(core);
    }
    result.report.streams.push_back(std::move(r));
  }
  result.report.stats = hierarchy.stats();
  result.report.llc_hit_ratio = result.report.stats.llc_hit_ratio();
  result.report.llc_mpi =
      result.report.stats.llc_misses_per_instruction();
  result.report.group_moves = scheduler.group_moves();
  result.report.skipped_moves = scheduler.skipped_moves();
  result.report.clos_reassociations = machine->resctrl().reassociations();
  return result;
}

}  // namespace catdb::engine
