#ifndef CATDB_ENGINE_COSCHEDULER_H_
#define CATDB_ENGINE_COSCHEDULER_H_

#include <cstdint>
#include <vector>

#include "engine/partitioning_policy.h"
#include "engine/query.h"
#include "engine/runner.h"
#include "sim/machine.h"

namespace catdb::engine {

/// Cache-aware batch co-scheduling — the paper's concluding outlook
/// (Section VIII): "it might be advisable to co-run operators with high
/// cache pollution characteristics, but let cache-sensitive queries rather
/// run alone". Given a batch of queries with known cache behaviour, the
/// planner forms execution rounds:
///
///  * two cache-polluting queries may share the machine (neither owns a
///    cache working set the other could destroy — they only split
///    bandwidth);
///  * a leftover polluter may join a cache-sensitive query *under CAT*
///    (the partitioning policy confines the polluter);
///  * cache-sensitive queries never share with each other — they run alone
///    with all cores.
struct BatchItem {
  Query* query = nullptr;
  /// Dominant cache behaviour of the query (as profiled offline or taken
  /// from its operators' CUIDs).
  CacheUsage usage = CacheUsage::kSensitive;
  /// Iterations this batch item must complete.
  uint64_t iterations = 1;
};

/// One execution round: indices into the batch, run concurrently (size 1 or
/// 2; a size-1 round gets all cores).
struct Round {
  std::vector<size_t> items;
};

/// Plans rounds under the cache-aware rule above. Deterministic: preserves
/// batch order within each class.
std::vector<Round> PlanCacheAwareRounds(const std::vector<BatchItem>& batch);

/// Baseline: pair queries first-come-first-served regardless of class.
std::vector<Round> PlanFifoRounds(const std::vector<BatchItem>& batch);

/// Cores granted to the *first* item of a two-item round on a machine with
/// `num_cores` cores (the second item gets the rest). For odd core counts
/// the extra core alternates with the round index, so neither batch
/// position is systematically favoured across rounds. Exposed for tests.
uint32_t RoundCoreSplit(uint32_t num_cores, size_t round_index);

/// Outcome of executing a round plan: the makespan plus one RunReport per
/// round (hardware counters, per-stream throughput) for the run-report
/// export.
struct RoundsReport {
  uint64_t makespan_cycles = 0;
  std::vector<uint64_t> round_cycles;      // duration of each round
  std::vector<RunReport> round_reports;    // one per round, in order
};

/// Executes the rounds back to back on the machine (two-item rounds split
/// the cores; see RoundCoreSplit) and returns the makespan plus per-round
/// reports. `policy` applies within every round (pass enabled=true so mixed
/// rounds are CAT-protected).
RoundsReport ExecuteRoundsReport(sim::Machine* machine,
                                 const std::vector<BatchItem>& batch,
                                 const std::vector<Round>& rounds,
                                 const PolicyConfig& policy);

/// Convenience wrapper: only the total makespan in cycles.
uint64_t ExecuteRounds(sim::Machine* machine,
                       const std::vector<BatchItem>& batch,
                       const std::vector<Round>& rounds,
                       const PolicyConfig& policy);

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_COSCHEDULER_H_
