#ifndef CATDB_ENGINE_DYNAMIC_POLICY_H_
#define CATDB_ENGINE_DYNAMIC_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/runner.h"

namespace catdb::engine {

/// Configuration of the *dynamic* cache-partitioning controller — the
/// paper's outlook (Sections VII/VIII): instead of static per-operator
/// annotations, classify running query streams online from hardware
/// monitoring (CMT/MBM and per-class LLC counters) and program CAT masks
/// accordingly. Related work the heuristic follows: Soares et al. (classify
/// polluters by miss behaviour), Herdrich et al. (CMT/CAT).
struct DynamicPolicyConfig {
  /// Monitoring/decision interval in simulated cycles.
  uint64_t interval_cycles = 10'000'000;
  /// A stream is classified cache-polluting when, within one interval, it
  /// consumed at least this share of the DRAM channel's line capacity ...
  double polluter_bandwidth_share = 0.20;
  /// ... while its LLC hit ratio stayed below this bound (it streams and
  /// does not reuse what it caches).
  double polluter_hit_ratio = 0.10;
  /// Ways granted to streams classified polluting (mask 0x3 by default).
  uint32_t polluting_ways = 2;
};

/// Outcome of a dynamic run: the usual workload report plus the
/// classification trace.
struct DynamicRunReport {
  RunReport report;
  /// Per stream: was it restricted when the run ended?
  std::vector<bool> restricted;
  /// Per stream: first interval (1-based) at which the controller
  /// restricted it; 0 = never.
  std::vector<uint32_t> restricted_at_interval;
  uint32_t intervals = 0;
  /// Mask (re)programming operations performed by the controller.
  uint64_t schemata_writes = 0;
};

/// Runs the streams concurrently like RunWorkload, but with *no* static
/// annotations in effect: every stream starts with the full cache in its
/// own monitoring group, and between intervals the controller re-reads the
/// group's MBM and LLC-hit counters and tightens or widens its CAT mask.
DynamicRunReport RunWorkloadDynamic(sim::Machine* machine,
                                    const std::vector<StreamSpec>& specs,
                                    uint64_t horizon_cycles,
                                    const DynamicPolicyConfig& config);

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_DYNAMIC_POLICY_H_
