#ifndef CATDB_ENGINE_DYNAMIC_POLICY_H_
#define CATDB_ENGINE_DYNAMIC_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/runner.h"
#include "obs/interval_sampler.h"

namespace catdb::engine {

/// Configuration of the *dynamic* cache-partitioning controller — the
/// paper's outlook (Sections VII/VIII): instead of static per-operator
/// annotations, classify running query streams online from hardware
/// monitoring (CMT/MBM and per-class LLC counters) and program CAT masks
/// accordingly. Related work the heuristic follows: Soares et al. (classify
/// polluters by miss behaviour), Herdrich et al. (CMT/CAT).
struct DynamicPolicyConfig {
  /// Monitoring/decision interval in simulated cycles.
  uint64_t interval_cycles = 10'000'000;
  /// A stream is classified cache-polluting when, within one interval, it
  /// consumed at least this share of the DRAM channel's line capacity ...
  double polluter_bandwidth_share = 0.20;
  /// ... while its LLC hit ratio stayed below this bound (it streams and
  /// does not reuse what it caches).
  double polluter_hit_ratio = 0.10;
  /// Ways granted to streams classified polluting (mask 0x3 by default).
  uint32_t polluting_ways = 2;
  /// Hysteresis: a restricted stream is widened back to the full mask only
  /// after this many *consecutive* non-polluter intervals. Restriction
  /// itself stays immediate (one bad interval restricts). Guards against
  /// flapping: a polluter stalled behind the DRAM queue for one interval
  /// (lookups_delta == 0 reads as the idle hit_ratio default of 1.0) would
  /// otherwise be unrestricted and instantly re-restricted, burning two
  /// schemata writes per flap. 0 disables the hysteresis entirely: the
  /// first clean interval widens immediately (same as 1).
  uint32_t unrestrict_intervals = 2;
};

/// Validates a dynamic-controller configuration against the machine's LLC
/// width. Returns InvalidArgument instead of letting a zero interval spin
/// the controller or an out-of-range way count produce a degenerate
/// (empty or over-wide) CAT mask.
Status ValidateDynamicPolicyConfig(const DynamicPolicyConfig& config,
                                   uint32_t llc_ways);

/// Per-interval classification + hysteresis state machine of the dynamic
/// controller, factored out of the run loop so the decision logic is
/// testable with synthetic monitoring sequences.
class DynamicClassifier {
 public:
  DynamicClassifier(const DynamicPolicyConfig& config, size_t num_streams);

  struct Decision {
    bool changed = false;     // a mask write is required
    bool restricted = false;  // the stream's state after this interval
  };

  /// Feeds one interval's monitoring deltas for `stream` and returns the
  /// resulting state. `bandwidth_share` is the stream's share of the DRAM
  /// channel capacity within the interval (obs::ChannelBandwidthShare over
  /// the *actual* interval length); `hit_ratio` its demand LLC hit ratio
  /// (1.0 when it had no LLC lookups); `lookups` the demand LLC lookups
  /// behind that ratio. An interval that moved data without demand lookups
  /// (lookups == 0, bandwidth_share > 0 — e.g. pure prefetch fills, or a
  /// stream stalled behind the DRAM queue) is ambiguous: it neither counts
  /// toward nor resets the clean streak.
  Decision OnInterval(size_t stream, double bandwidth_share,
                      double hit_ratio, uint64_t lookups);

  bool restricted(size_t stream) const { return restricted_[stream]; }

 private:
  DynamicPolicyConfig config_;
  std::vector<bool> restricted_;
  /// Consecutive non-polluter intervals observed while restricted.
  std::vector<uint32_t> clean_streak_;
};

/// Outcome of a dynamic run: the usual workload report plus the
/// classification trace.
struct DynamicRunReport {
  RunReport report;
  /// Per stream: was it restricted when the run ended?
  std::vector<bool> restricted;
  /// Per stream: first interval (1-based) at which the controller
  /// restricted it; 0 = never.
  std::vector<uint32_t> restricted_at_interval;
  uint32_t intervals = 0;
  /// Mask (re)programming operations performed by the controller.
  uint64_t schemata_writes = 0;
  /// Stream resource-group names, in stream order (matches the per-CLOS
  /// entries of each interval sample).
  std::vector<std::string> group_names;
  /// Per-interval monitoring time series (one entry per decision interval;
  /// sample i's per-CLOS entries are in stream order). Replaying the
  /// classifier over this series reproduces the restriction flips — the
  /// consistency the observability tests pin.
  std::vector<obs::IntervalSample> interval_series;
};

/// Runs the streams concurrently like RunWorkload, but with *no* static
/// annotations in effect: every stream starts with the full cache in its
/// own monitoring group, and between intervals the controller re-reads the
/// group's MBM and LLC-hit counters and tightens or widens its CAT mask.
DynamicRunReport RunWorkloadDynamic(sim::Machine* machine,
                                    const std::vector<StreamSpec>& specs,
                                    uint64_t horizon_cycles,
                                    const DynamicPolicyConfig& config);

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_DYNAMIC_POLICY_H_
