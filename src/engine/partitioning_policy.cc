#include "engine/partitioning_policy.h"

#include "common/bits.h"
#include "common/check.h"

namespace catdb::engine {

Status ValidatePolicyConfig(const PolicyConfig& config, uint32_t llc_ways) {
  if (llc_ways < 1) {
    return Status::InvalidArgument("llc_ways must be at least 1");
  }
  if (config.enabled) {
    if (config.polluting_ways < 1 || config.polluting_ways > llc_ways) {
      return Status::InvalidArgument(
          "polluting_ways must be in [1, llc_ways]: a zero-way CAT mask is "
          "invalid and an over-wide one exceeds the schemata width");
    }
    if (config.shared_ways < 1 || config.shared_ways > llc_ways) {
      return Status::InvalidArgument(
          "shared_ways must be in [1, llc_ways]");
    }
  }
  if (config.instance_ways > llc_ways) {
    return Status::InvalidArgument(
        "instance_ways must not exceed llc_ways (0 means all ways)");
  }
  if (!(config.adaptive_l2_fit >= 0.0) ||
      !(config.adaptive_l2_fit < config.adaptive_high)) {
    return Status::InvalidArgument(
        "adaptive bounds must satisfy 0 <= adaptive_l2_fit < adaptive_high "
        "(inverted bounds classify every adaptive job as polluting)");
  }
  return Status::OK();
}

PartitioningPolicy::PartitioningPolicy(const PolicyConfig& config,
                                       uint64_t llc_bytes, uint32_t llc_ways,
                                       uint64_t l2_bytes)
    : config_(config),
      llc_bytes_(llc_bytes),
      llc_ways_(llc_ways),
      l2_bytes_(l2_bytes) {
  // Out-of-range way counts used to be clamped here silently; an enabled
  // scheme asking for 12 shared ways on an 8-way LLC now fails validation
  // instead of quietly running a different partition than configured.
  const Status st = ValidatePolicyConfig(config_, llc_ways_);
  CATDB_CHECK(st.ok());
}

uint64_t PartitioningPolicy::MaskForWays(uint32_t ways) const {
  CATDB_CHECK(ways >= 1 && ways <= llc_ways_);
  return catdb::MaskForWays(ways);
}

std::string PartitioningPolicy::GroupFor(const Job& job) const {
  if (!config_.enabled) return "";
  switch (job.cache_usage()) {
    case CacheUsage::kPolluting:
      return kPollutingGroup;
    case CacheUsage::kSensitive:
      // Default group: the full cache. Jobs default to sensitive so an
      // unannotated workload can never regress.
      return "";
    case CacheUsage::kAdaptive: {
      if (!config_.adaptive_heuristic) {
        return config_.adaptive_force_polluting ? kPollutingGroup
                                                : kSharedGroup;
      }
      const double ws = static_cast<double>(job.adaptive_working_set());
      const bool fits_l2 =
          ws <= config_.adaptive_l2_fit * static_cast<double>(l2_bytes_);
      const bool exceeds_llc =
          ws >= config_.adaptive_high * static_cast<double>(llc_bytes_);
      return (fits_l2 || exceeds_llc) ? kPollutingGroup : kSharedGroup;
    }
  }
  return "";
}

}  // namespace catdb::engine
