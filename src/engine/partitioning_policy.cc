#include "engine/partitioning_policy.h"

#include "common/bits.h"
#include "common/check.h"

namespace catdb::engine {

PartitioningPolicy::PartitioningPolicy(const PolicyConfig& config,
                                       uint64_t llc_bytes, uint32_t llc_ways,
                                       uint64_t l2_bytes)
    : config_(config),
      llc_bytes_(llc_bytes),
      llc_ways_(llc_ways),
      l2_bytes_(l2_bytes) {
  CATDB_CHECK(llc_ways_ >= 1);
  CATDB_CHECK(config_.polluting_ways >= 1);
  CATDB_CHECK(config_.shared_ways >= 1);
  // The defaults (2 and 12 of 20 ways — the paper's 0x3 and 0xfff) are
  // clamped on machines with narrower LLCs so one PolicyConfig works for
  // any simulated geometry.
  if (config_.polluting_ways > llc_ways_) config_.polluting_ways = llc_ways_;
  if (config_.shared_ways > llc_ways_) config_.shared_ways = llc_ways_;
  if (config_.instance_ways > llc_ways_) config_.instance_ways = llc_ways_;
}

uint64_t PartitioningPolicy::MaskForWays(uint32_t ways) const {
  CATDB_CHECK(ways >= 1 && ways <= llc_ways_);
  return catdb::MaskForWays(ways);
}

std::string PartitioningPolicy::GroupFor(const Job& job) const {
  if (!config_.enabled) return "";
  switch (job.cache_usage()) {
    case CacheUsage::kPolluting:
      return kPollutingGroup;
    case CacheUsage::kSensitive:
      // Default group: the full cache. Jobs default to sensitive so an
      // unannotated workload can never regress.
      return "";
    case CacheUsage::kAdaptive: {
      if (!config_.adaptive_heuristic) {
        return config_.adaptive_force_polluting ? kPollutingGroup
                                                : kSharedGroup;
      }
      const double ws = static_cast<double>(job.adaptive_working_set());
      const bool fits_l2 =
          ws <= config_.adaptive_l2_fit * static_cast<double>(l2_bytes_);
      const bool exceeds_llc =
          ws >= config_.adaptive_high * static_cast<double>(llc_bytes_);
      return (fits_l2 || exceeds_llc) ? kPollutingGroup : kSharedGroup;
    }
  }
  return "";
}

}  // namespace catdb::engine
