#include "engine/runner.h"

#include "common/check.h"
#include "common/units.h"
#include "sim/epoch_executor.h"

namespace catdb::engine {

QueryStream::QueryStream(Query* query, std::vector<uint32_t> cores,
                         JobScheduler* scheduler, uint64_t max_iterations)
    : query_(query),
      cores_(std::move(cores)),
      scheduler_(scheduler),
      max_iterations_(max_iterations) {
  CATDB_CHECK(query_ != nullptr);
  CATDB_CHECK(!cores_.empty());
  CATDB_CHECK(scheduler_ != nullptr);
}

void QueryStream::StartPhase() {
  jobs_.clear();
  next_job_ = 0;
  query_->MakePhaseJobs(phase_, static_cast<uint32_t>(cores_.size()), &jobs_);
  CATDB_CHECK(!jobs_.empty());
  // Jobs of a new phase may not start before every job of the previous
  // phase finished (barrier).
  for (auto& job : jobs_) job->set_ready_time(barrier_clock_);
  phase_started_ = true;
}

sim::Task* QueryStream::NextTask(uint32_t core) {
  (void)core;
  if (!phase_started_) {
    if (max_iterations_ != 0 && completed_ >= max_iterations_) return nullptr;
    StartPhase();
  }
  if (next_job_ < jobs_.size()) {
    Job* job = jobs_[next_job_++].get();
    running_ += 1;
    return job;
  }
  if (running_ > 0) return nullptr;  // barrier: wait for phase stragglers

  // Phase complete: advance to the next phase or iteration.
  for (auto& job : jobs_) work_finished_this_iter_ += job->work_done();
  phase_ += 1;
  if (phase_ >= query_->num_phases()) {
    phase_ = 0;
    completed_ += 1;
    iteration_end_clocks_.push_back(barrier_clock_);
    work_finished_this_iter_ = 0;
    if (max_iterations_ != 0 && completed_ >= max_iterations_) {
      jobs_.clear();
      phase_started_ = false;
      return nullptr;
    }
  }
  StartPhase();
  Job* job = jobs_[next_job_++].get();
  running_ += 1;
  return job;
}

void QueryStream::TaskFinished(sim::Task* task, uint32_t core,
                               uint64_t clock) {
  (void)core;
  auto* job = static_cast<Job*>(task);
  job->set_finished();
  CATDB_CHECK(running_ > 0);
  running_ -= 1;
  if (clock > barrier_clock_) barrier_clock_ = clock;
}

void QueryStream::TaskDispatched(sim::Task* task, uint32_t core) {
  scheduler_->OnDispatch(static_cast<Job*>(task), core);
}

double QueryStream::Iterations() const {
  uint64_t live_work = work_finished_this_iter_;
  for (const auto& job : jobs_) {
    // Count jobs of the in-flight phase; finished ones are not yet folded
    // into work_finished_this_iter_ (that happens at the phase boundary).
    live_work += job->work_done();
  }
  const double total =
      static_cast<double>(query_->TotalWorkPerIteration());
  double fraction = total > 0 ? static_cast<double>(live_work) / total : 0;
  if (fraction > 1) fraction = 1;
  return static_cast<double>(completed_) + fraction;
}

RunReport CollectRunReport(
    sim::Machine* machine, const JobScheduler& scheduler,
    const std::vector<std::unique_ptr<QueryStream>>& streams,
    uint64_t duration_cycles) {
  RunReport report;
  report.sim_seconds = CyclesToSeconds(duration_cycles);
  for (const auto& stream : streams) {
    StreamResult r;
    r.query_name = stream->query()->name();
    r.iterations = stream->Iterations();
    r.iterations_per_second =
        report.sim_seconds > 0 ? r.iterations / report.sim_seconds : 0;
    r.iteration_end_clocks = stream->iteration_end_clocks();
    for (uint32_t core : stream->cores()) {
      r.stats += machine->hierarchy().core_stats(core);
    }
    report.streams.push_back(std::move(r));
  }
  report.stats = machine->hierarchy().stats();
  report.llc_hit_ratio = report.stats.llc_hit_ratio();
  report.llc_mpi = report.stats.llc_misses_per_instruction();
  report.group_moves = scheduler.group_moves();
  report.skipped_moves = scheduler.skipped_moves();
  report.clos_reassociations = machine->resctrl().reassociations();
  return report;
}

RunReport RunWorkload(sim::Machine* machine,
                      const std::vector<StreamSpec>& specs,
                      uint64_t horizon_cycles, const PolicyConfig& policy) {
  CATDB_CHECK(machine != nullptr);
  CATDB_CHECK(!specs.empty());

  machine->ResetForRun();
  machine->resctrl().Reset();

  JobScheduler scheduler(machine, policy);
  const Status st = scheduler.SetupGroups();
  CATDB_CHECK(st.ok());

  const std::unique_ptr<sim::Executor> executor = sim::MakeExecutor(machine);
  std::vector<std::unique_ptr<QueryStream>> streams;
  for (const StreamSpec& spec : specs) {
    CATDB_CHECK(spec.query != nullptr);
    streams.push_back(std::make_unique<QueryStream>(
        spec.query, spec.cores, &scheduler, spec.max_iterations));
    for (uint32_t core : spec.cores) {
      executor->Attach(core, streams.back().get());
    }
  }

  executor->RunUntil(horizon_cycles);
  return CollectRunReport(machine, scheduler, streams, horizon_cycles);
}

RunReport RunQueryIterations(sim::Machine* machine, Query* query,
                             const std::vector<uint32_t>& cores,
                             uint64_t iterations,
                             const PolicyConfig& policy) {
  CATDB_CHECK(machine != nullptr);
  CATDB_CHECK(iterations >= 1);

  machine->ResetForRun();
  machine->resctrl().Reset();

  JobScheduler scheduler(machine, policy);
  const Status st = scheduler.SetupGroups();
  CATDB_CHECK(st.ok());

  const std::unique_ptr<sim::Executor> executor = sim::MakeExecutor(machine);
  std::vector<std::unique_ptr<QueryStream>> streams;
  streams.push_back(
      std::make_unique<QueryStream>(query, cores, &scheduler, iterations));
  for (uint32_t core : cores) executor->Attach(core, streams.back().get());

  const uint64_t end_clock = executor->RunUntilIdle();
  return CollectRunReport(machine, scheduler, streams, end_clock);
}

}  // namespace catdb::engine
