#include "engine/query.h"

#include "common/check.h"
#include "engine/row_partition.h"

namespace catdb::engine {

std::vector<RowRange> PartitionRows(uint64_t num_rows, uint32_t num_workers) {
  CATDB_CHECK(num_workers >= 1);
  std::vector<RowRange> ranges;
  ranges.reserve(num_workers);
  const uint64_t base = num_rows / num_workers;
  const uint64_t extra = num_rows % num_workers;
  uint64_t begin = 0;
  for (uint32_t w = 0; w < num_workers; ++w) {
    const uint64_t len = base + (w < extra ? 1 : 0);
    ranges.push_back(RowRange{begin, begin + len});
    begin += len;
  }
  return ranges;
}

}  // namespace catdb::engine
