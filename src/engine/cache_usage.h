#ifndef CATDB_ENGINE_CACHE_USAGE_H_
#define CATDB_ENGINE_CACHE_USAGE_H_

namespace catdb::engine {

/// Cache usage identifier (CUID) annotated on every job, following the
/// paper's taxonomy (Section V-C):
///
///  (i)  kPolluting  — not cache-sensitive and pollutes the cache
///                     (e.g. the column scan);
///  (ii) kSensitive  — profits from the entire cache (e.g. aggregation with
///                     grouping). This is the default to avoid regressions.
///  (iii) kAdaptive  — can be either, depending on query or data (e.g. the
///                     foreign-key join, depending on its bit-vector size).
enum class CacheUsage {
  kPolluting,
  kSensitive,
  kAdaptive,
};

inline const char* CacheUsageName(CacheUsage cuid) {
  switch (cuid) {
    case CacheUsage::kPolluting:
      return "polluting";
    case CacheUsage::kSensitive:
      return "sensitive";
    case CacheUsage::kAdaptive:
      return "adaptive";
  }
  return "?";
}

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_CACHE_USAGE_H_
