#ifndef CATDB_ENGINE_RUNNER_H_
#define CATDB_ENGINE_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/job_scheduler.h"
#include "engine/partitioning_policy.h"
#include "engine/query.h"
#include "sim/executor.h"
#include "sim/machine.h"
#include "simcache/cache_stats.h"

namespace catdb::engine {

/// Repeats a query's iterations on a fixed set of cores, feeding jobs to the
/// discrete-event executor and enforcing phase barriers. Implements
/// sim::TaskSource.
class QueryStream : public sim::TaskSource {
 public:
  /// `max_iterations` == 0 means unbounded (run until the horizon).
  QueryStream(Query* query, std::vector<uint32_t> cores,
              JobScheduler* scheduler, uint64_t max_iterations = 0);

  // sim::TaskSource:
  sim::Task* NextTask(uint32_t core) override;
  void TaskFinished(sim::Task* task, uint32_t core, uint64_t clock) override;
  void TaskDispatched(sim::Task* task, uint32_t core) override;

  Query* query() const { return query_; }
  const std::vector<uint32_t>& cores() const { return cores_; }

  /// Completed iterations plus the fractional progress of the one in flight.
  double Iterations() const;
  uint64_t completed_iterations() const { return completed_; }

  /// Clock at which each completed iteration finished (cycle timestamps);
  /// lets callers compute per-iteration latency for isolated sweeps.
  const std::vector<uint64_t>& iteration_end_clocks() const {
    return iteration_end_clocks_;
  }

 private:
  void StartPhase();

  Query* query_;
  std::vector<uint32_t> cores_;
  JobScheduler* scheduler_;
  uint64_t max_iterations_;

  std::vector<std::unique_ptr<Job>> jobs_;  // jobs of the current phase
  size_t next_job_ = 0;
  uint32_t running_ = 0;
  uint32_t phase_ = 0;
  bool phase_started_ = false;
  uint64_t barrier_clock_ = 0;  // max finish clock seen so far
  uint64_t completed_ = 0;
  uint64_t work_finished_this_iter_ = 0;
  std::vector<uint64_t> iteration_end_clocks_;
};

/// One concurrent query stream: the query plus the cores it owns.
struct StreamSpec {
  Query* query = nullptr;
  std::vector<uint32_t> cores;
  /// 0 = unbounded.
  uint64_t max_iterations = 0;
};

/// Per-stream outcome of a workload run.
struct StreamResult {
  std::string query_name;
  double iterations = 0;
  double iterations_per_second = 0;
  std::vector<uint64_t> iteration_end_clocks;
  /// Hardware counters of the stream's cores (summed), e.g. the per-query
  /// LLC hit ratio the paper discusses alongside Fig. 9.
  simcache::HierarchyStats stats;
};

/// Outcome of a workload run: throughput per stream plus the hardware
/// metrics the paper reports (LLC hit ratio, LLC misses per instruction).
struct RunReport {
  std::vector<StreamResult> streams;
  simcache::HierarchyStats stats;
  double sim_seconds = 0;
  double llc_hit_ratio = 0;
  double llc_mpi = 0;
  uint64_t group_moves = 0;
  uint64_t skipped_moves = 0;
  uint64_t clos_reassociations = 0;
};

/// Assembles a RunReport from finished streams: per-stream throughput over
/// `duration_cycles`, summed per-core hardware counters, machine-wide LLC
/// metrics, and the control-plane move/reassociation counts. Shared by
/// RunWorkload, the dynamic controller, and the round executor.
RunReport CollectRunReport(
    sim::Machine* machine, const JobScheduler& scheduler,
    const std::vector<std::unique_ptr<QueryStream>>& streams,
    uint64_t duration_cycles);

/// Runs the given streams concurrently for `horizon_cycles` of simulated
/// time under the given partitioning policy. Resets machine state (caches,
/// clocks, statistics, resctrl groups) first; simulated datasets persist.
RunReport RunWorkload(sim::Machine* machine,
                      const std::vector<StreamSpec>& specs,
                      uint64_t horizon_cycles, const PolicyConfig& policy);

/// Convenience: runs one query for exactly `iterations` iterations and
/// returns the report (streams[0].iteration_end_clocks holds the per-
/// iteration completion times). Used by the isolated cache-size sweeps of
/// Figures 4-6, which measure single-execution latency.
RunReport RunQueryIterations(sim::Machine* machine, Query* query,
                             const std::vector<uint32_t>& cores,
                             uint64_t iterations, const PolicyConfig& policy);

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_RUNNER_H_
