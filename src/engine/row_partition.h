#ifndef CATDB_ENGINE_ROW_PARTITION_H_
#define CATDB_ENGINE_ROW_PARTITION_H_

#include <cstdint>
#include <vector>

namespace catdb::engine {

/// Half-open row range [begin, end) assigned to one job.
struct RowRange {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t size() const { return end - begin; }
};

/// Splits `num_rows` rows into `num_workers` contiguous, balanced ranges
/// (sizes differ by at most one; empty ranges possible when rows < workers).
std::vector<RowRange> PartitionRows(uint64_t num_rows, uint32_t num_workers);

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_ROW_PARTITION_H_
