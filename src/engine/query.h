#ifndef CATDB_ENGINE_QUERY_H_
#define CATDB_ENGINE_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/job.h"
#include "sim/machine.h"

namespace catdb::engine {

/// A query is a factory of per-iteration job phases. One *iteration* is one
/// full execution of the query; measurement runs repeat iterations for a
/// fixed simulated duration (the paper executes each query repeatedly for
/// 90 seconds and reports throughput).
///
/// Phases execute in order with a barrier in between (e.g. local aggregation
/// before the merge). Within a phase the jobs run in parallel on the
/// stream's cores.
class Query {
 public:
  explicit Query(std::string name) : name_(std::move(name)) {}
  virtual ~Query() = default;

  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;

  const std::string& name() const { return name_; }

  /// Number of phases per iteration (>= 1).
  virtual uint32_t num_phases() const = 0;

  /// Appends the jobs of `phase` for a fresh pass, parallelized over
  /// `num_workers` job workers. Called once per phase per iteration;
  /// phase 0 starts a new iteration (queries reset per-iteration state and
  /// draw fresh query parameters there).
  virtual void MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                             std::vector<std::unique_ptr<Job>>* out) = 0;

  /// Total work units of one iteration (for fractional-progress accounting
  /// when the measurement horizon truncates the last iteration).
  virtual uint64_t TotalWorkPerIteration() const = 0;

  /// Registers the query's datasets and auxiliary structures with the
  /// machine's simulated address space. Must be called once before use.
  virtual void AttachSim(sim::Machine* machine) = 0;

 private:
  std::string name_;
};

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_QUERY_H_
