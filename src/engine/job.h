#ifndef CATDB_ENGINE_JOB_H_
#define CATDB_ENGINE_JOB_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "engine/cache_usage.h"
#include "sim/executor.h"
#include "sim/machine.h"
#include "simcache/cache_geometry.h"

namespace catdb::engine {

/// A job encapsulates (at most) one operator's work unit, executed by a job
/// worker from the thread pool — the unit the paper attaches cache-usage
/// annotations to ("we implement cache partitioning for jobs to enable cache
/// optimizations per operator", Section V-C).
///
/// Jobs are resumable: Step() processes a bounded chunk so the discrete-event
/// executor can interleave concurrent queries at fine granularity.
class Job : public sim::Task {
 public:
  Job(std::string name, CacheUsage cuid)
      : name_(std::move(name)), cuid_(cuid) {}

  const std::string& name() const { return name_; }
  std::string_view label() const override { return name_; }
  CacheUsage cache_usage() const { return cuid_; }
  /// Overrides the operator's intrinsic annotation. Used by the plan layer
  /// when a plan node carries an explicit CUID; must be called before the
  /// job is handed to the executor (the policy reads it at dispatch).
  void set_cache_usage(CacheUsage cuid) { cuid_ = cuid; }

  /// For kAdaptive jobs: the size of the operator's frequently accessed
  /// structure (the join's bit vector). The partitioning policy compares it
  /// to the LLC size to decide between the polluting and the shared mask.
  uint64_t adaptive_working_set() const { return adaptive_working_set_; }
  void set_adaptive_working_set(uint64_t bytes) {
    adaptive_working_set_ = bytes;
  }

  bool finished() const { return finished_; }
  void set_finished() { finished_ = true; }

 protected:
  /// Reports `units` of completed work (typically rows) for fractional
  /// iteration accounting. Routed through the context so the executor can
  /// defer the credit until the Step is applied to the machine (replay time
  /// under the epoch executor); read it back via sim::Task::work_done().
  void AddWork(sim::ExecContext& ctx, uint64_t units) { ctx.AddWork(units); }

  /// Touches `n` lines of the executing worker's hot scratch region (stack
  /// frames, operator state). Called once per chunk by operators; this
  /// re-used working set is what a too-narrow CAT mask (0x1) lets streaming
  /// data thrash. The region is line-aligned by construction, so the touches
  /// batch into at most two runs (one wraparound) instead of a per-line loop.
  void TouchScratch(sim::ExecContext& ctx, uint32_t n) {
    const uint64_t base = ctx.machine().CoreScratchVbase(ctx.core());
    while (n > 0) {
      const uint32_t run =
          std::min(n, sim::Machine::kScratchLines - scratch_cursor_);
      ctx.ReadRun(base + scratch_cursor_ * simcache::kLineSize, run);
      scratch_cursor_ = (scratch_cursor_ + run) % sim::Machine::kScratchLines;
      n -= run;
    }
  }

 private:
  std::string name_;
  CacheUsage cuid_;
  uint64_t adaptive_working_set_ = 0;
  uint32_t scratch_cursor_ = 0;
  bool finished_ = false;
};

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_JOB_H_
