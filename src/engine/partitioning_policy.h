#ifndef CATDB_ENGINE_PARTITIONING_POLICY_H_
#define CATDB_ENGINE_PARTITIONING_POLICY_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/job.h"

namespace catdb::engine {

/// Resource-group names used by the engine inside the (emulated) resctrl
/// file system. The default group "" always exists and keeps the full mask.
inline constexpr const char* kPollutingGroup = "polluting";
inline constexpr const char* kSharedGroup = "shared60";

/// Tuning knobs of the cache partitioning scheme (Section V-B).
struct PolicyConfig {
  /// Master switch: disabled reproduces the paper's "not partitioned" bars.
  bool enabled = false;

  /// Ways granted to cache-polluting jobs. 2 of 20 ways = 10 % of the LLC,
  /// the paper's bitmask "0x3".
  uint32_t polluting_ways = 2;

  /// Ways granted to adaptive jobs classified cache-sensitive (the FK join
  /// with an LLC-sized bit vector). 12 of 20 ways = 60 %, bitmask "0xfff".
  uint32_t shared_ways = 12;

  /// The adaptive heuristic (Section V-B): the join is cache-polluting when
  /// its bit vector either (almost) fits in the private L2 — it then never
  /// needs the LLC ("the join operator only causes cache pollution whenever
  /// its frequently accessed data structures fit in the L2 cache",
  /// §VI-F) — or far exceeds the LLC. In between it is cache-sensitive.
  ///
  /// Lower bound: working sets <= adaptive_l2_fit x the L2 capacity are
  /// L2-resident.
  double adaptive_l2_fit = 0.5;
  /// Upper bound: working sets >= adaptive_high x the LLC capacity cannot
  /// be cached anyway.
  double adaptive_high = 2.0;

  /// When false, the heuristic is bypassed and adaptive jobs are forced to
  /// the group selected by `adaptive_force_polluting` (used to reproduce the
  /// deliberately bad 10 % scheme of Fig. 10 and for ablations).
  bool adaptive_heuristic = true;
  bool adaptive_force_polluting = false;

  /// The paper's optimization: compare old and new bitmask and only call
  /// into the kernel when they differ. Disable for the overhead ablation.
  bool skip_redundant_assign = true;

  /// Experiment support (Figures 4-6): restrict the *entire instance* —
  /// i.e. the default CLOS — to this many LLC ways. 0 means "all ways".
  uint32_t instance_ways = 0;
};

/// Validates a partitioning configuration against the machine's LLC width.
/// Returns InvalidArgument for configurations that would program degenerate
/// CAT masks: a zero-way mask is invalid under CAT, an over-wide one exceeds
/// the schemata width, and inverted adaptive bounds make the working-set
/// heuristic classify every job the same way. The way-count bounds apply
/// only when the scheme is enabled — a disabled config carries its (unused)
/// defaults onto machines of any geometry.
Status ValidatePolicyConfig(const PolicyConfig& config, uint32_t llc_ways);

/// Maps a job's cache-usage annotation to a resctrl resource group according
/// to the configured scheme. Construction requires a configuration that
/// passes ValidatePolicyConfig for the given LLC width (checked; callers
/// holding untrusted configs validate first and handle the Status).
class PartitioningPolicy {
 public:
  PartitioningPolicy(const PolicyConfig& config, uint64_t llc_bytes,
                     uint32_t llc_ways, uint64_t l2_bytes);

  const PolicyConfig& config() const { return config_; }

  /// Resource-group name for a job ("" = default group, full cache).
  std::string GroupFor(const Job& job) const;

  /// Capacity bitmask with the lowest `ways` bits set.
  uint64_t MaskForWays(uint32_t ways) const;

  uint64_t polluting_mask() const { return MaskForWays(config_.polluting_ways); }
  uint64_t shared_mask() const { return MaskForWays(config_.shared_ways); }

 private:
  PolicyConfig config_;
  uint64_t llc_bytes_;
  uint32_t llc_ways_;
  uint64_t l2_bytes_;
};

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_PARTITIONING_POLICY_H_
