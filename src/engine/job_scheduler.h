#ifndef CATDB_ENGINE_JOB_SCHEDULER_H_
#define CATDB_ENGINE_JOB_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/job.h"
#include "engine/partitioning_policy.h"
#include "sim/machine.h"

namespace catdb::engine {

/// Applies the cache-partitioning scheme at job dispatch time, mirroring the
/// integration described in Section V-C (Fig. 8):
///
///  * every virtual core hosts one job-worker thread (thread id == core id);
///  * when a job is dispatched, the scheduler maps its CUID to a resctrl
///    resource group via the policy;
///  * if the worker thread is not yet in that group, the scheduler writes
///    the thread id into the group's tasks file — a kernel interaction whose
///    cost is charged to the core (and skipped when the bitmask would not
///    change: "our implementation always compares old and new bitmasks and
///    only associates a TID with a new bitmask if really necessary");
///  * the kernel context-switch path then loads the thread's CLOS into the
///    core's IA32_PQR_ASSOC register.
class JobScheduler {
 public:
  JobScheduler(sim::Machine* machine, const PolicyConfig& policy_config);

  /// Creates the resource groups and programs their schemata. Also applies
  /// the experiment-level instance restriction (PolicyConfig::instance_ways)
  /// to the default CLOS. Must be called once before dispatching.
  Status SetupGroups();

  /// Hook called by query streams right before `job` starts on `core`.
  void OnDispatch(Job* job, uint32_t core);

  /// Pins every job dispatched on `core` to a fixed resource group,
  /// bypassing the CUID policy. Used by the dynamic controller, which
  /// partitions per *stream* (all of a stream's cores share one monitoring
  /// group) rather than per operator class.
  void SetCoreGroupOverride(uint32_t core, std::string group);

  /// Resolves the target resource group per *job* (highest precedence,
  /// checked before core overrides and the CUID policy). The serving tier
  /// uses this to route each tenant's queries into its cluster's group —
  /// tenants migrate between groups as the clustering evolves, which a
  /// per-core override cannot express. Pass nullptr to clear.
  using JobGroupResolver = std::function<std::string(const Job&, uint32_t)>;
  void SetJobGroupResolver(JobGroupResolver resolver) {
    job_group_resolver_ = std::move(resolver);
  }

  const PartitioningPolicy& policy() const { return policy_; }

  /// Kernel interactions performed (tasks-file writes) vs. avoided by the
  /// old-vs-new bitmask comparison.
  uint64_t group_moves() const { return group_moves_; }
  uint64_t skipped_moves() const { return skipped_moves_; }

 private:
  sim::Machine* machine_;
  PartitioningPolicy policy_;
  std::vector<std::string> core_group_override_;  // indexed by core; ""+flag
  std::vector<bool> core_has_override_;
  JobGroupResolver job_group_resolver_;
  uint64_t group_moves_ = 0;
  uint64_t skipped_moves_ = 0;
};

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_JOB_SCHEDULER_H_
