#ifndef CATDB_ENGINE_OPERATORS_FK_JOIN_H_
#define CATDB_ENGINE_OPERATORS_FK_JOIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/job.h"
#include "engine/query.h"
#include "engine/row_partition.h"
#include "storage/raw_column.h"
#include "storage/sim_bitvector.h"

namespace catdb::engine {

/// Build phase of the OLAP-optimized foreign-key join (paper Query 3):
///   SELECT COUNT(*) FROM R, S WHERE R.P = S.F
///
/// Maps the qualifying primary keys onto a bit vector of length N
/// (Section II "bit vectors" / Section III-A). Keys are dense and ordered,
/// so the build streams through both the key column and the bit vector.
class FkJoinBuildJob : public Job {
 public:
  FkJoinBuildJob(const storage::RawColumn* pk_column, RowRange range,
                 storage::SimBitVector* bits);

  bool Step(sim::ExecContext& ctx) override;

  static constexpr uint64_t kRowsPerChunk = 2048;

 private:
  const storage::RawColumn* pk_column_;
  RowRange range_;
  uint64_t cursor_;
  storage::SimBitVector* bits_;
  int64_t last_key_line_ = -1;
  int64_t last_bit_line_ = -1;
};

/// Probe phase: one bit-vector membership test per foreign key, counting
/// matches. Foreign keys arrive in random order, so the probe's working set
/// is the whole bit vector — cache-sensitive exactly when that bit vector is
/// comparable to the LLC (Section IV-C).
class FkJoinProbeJob : public Job {
 public:
  FkJoinProbeJob(const storage::RawColumn* fk_column, RowRange range,
                 const storage::SimBitVector* bits, uint64_t* result_sink);

  bool Step(sim::ExecContext& ctx) override;

  static constexpr uint64_t kRowsPerChunk = 512;

 private:
  const storage::RawColumn* fk_column_;
  RowRange range_;
  uint64_t cursor_;
  const storage::SimBitVector* bits_;
  uint64_t* result_sink_;
  uint64_t matches_ = 0;
  int64_t last_key_line_ = -1;
};

/// Query 3: two phases (parallel bit-vector build, then parallel probe).
/// Jobs carry the kAdaptive cache-usage id with the bit-vector size as the
/// working-set hint, feeding the policy heuristic of Section V-B.
class FkJoinQuery : public Query {
 public:
  /// `key_count` is N: primary keys range over 1..N. The bit vector has N
  /// bits.
  FkJoinQuery(const storage::RawColumn* pk_column,
              const storage::RawColumn* fk_column, uint32_t key_count);

  uint32_t num_phases() const override { return 2; }
  void MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                     std::vector<std::unique_ptr<Job>>* out) override;
  uint64_t TotalWorkPerIteration() const override {
    return pk_column_->size() + fk_column_->size();
  }
  void AttachSim(sim::Machine* machine) override;

  uint64_t last_result() const { return result_; }
  const storage::SimBitVector& bits() const { return bits_; }

 private:
  const storage::RawColumn* pk_column_;
  const storage::RawColumn* fk_column_;
  storage::SimBitVector bits_;
  uint64_t result_ = 0;
};

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_OPERATORS_FK_JOIN_H_
