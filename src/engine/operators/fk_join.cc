#include "engine/operators/fk_join.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "simcache/cache_geometry.h"

namespace catdb::engine {

FkJoinBuildJob::FkJoinBuildJob(const storage::RawColumn* pk_column,
                               RowRange range, storage::SimBitVector* bits)
    : Job("fk_join_build", CacheUsage::kAdaptive),
      pk_column_(pk_column),
      range_(range),
      cursor_(range.begin),
      bits_(bits) {
  CATDB_CHECK(pk_column_ != nullptr && bits_ != nullptr);
  set_adaptive_working_set(bits_->SizeBytes());
}

bool FkJoinBuildJob::Step(sim::ExecContext& ctx) {
  if (cursor_ >= range_.end) return false;
  const uint64_t chunk_end = std::min(range_.end, cursor_ + kRowsPerChunk);

  // The key column streams: charge the chunk's fresh key lines as one
  // batched run up-front, then walk the rows host-side.
  pk_column_->ReadRunSim(ctx, cursor_, chunk_end, &last_key_line_);
  for (uint64_t i = cursor_; i < chunk_end; ++i) {
    const int32_t key = pk_column_->Get(i);
    const uint64_t bit = static_cast<uint64_t>(key) - 1;
    const int64_t bit_line = static_cast<int64_t>(
        bits_->SimAddrOfBit(bit) / simcache::kLineSize);
    if (bit_line != last_bit_line_) {
      ctx.Write(bits_->SimAddrOfBit(bit));
      last_bit_line_ = bit_line;
    }
    bits_->Set(bit);
  }
  ctx.Compute((chunk_end - cursor_) * 2);
  ctx.Instructions((chunk_end - cursor_) * 6);
  TouchScratch(ctx, 1);

  AddWork(ctx, chunk_end - cursor_);
  cursor_ = chunk_end;
  return cursor_ < range_.end;
}

FkJoinProbeJob::FkJoinProbeJob(const storage::RawColumn* fk_column,
                               RowRange range,
                               const storage::SimBitVector* bits,
                               uint64_t* result_sink)
    : Job("fk_join_probe", CacheUsage::kAdaptive),
      fk_column_(fk_column),
      range_(range),
      cursor_(range.begin),
      bits_(bits),
      result_sink_(result_sink) {
  CATDB_CHECK(fk_column_ != nullptr && bits_ != nullptr);
  set_adaptive_working_set(bits_->SizeBytes());
}

bool FkJoinProbeJob::Step(sim::ExecContext& ctx) {
  if (cursor_ >= range_.end) return false;
  const uint64_t chunk_end = std::min(range_.end, cursor_ + kRowsPerChunk);

  // Batched read of the chunk's fresh foreign-key lines; the bit-vector
  // probes below stay scalar (random order).
  fk_column_->ReadRunSim(ctx, cursor_, chunk_end, &last_key_line_);
  for (uint64_t i = cursor_; i < chunk_end; ++i) {
    const int32_t key = fk_column_->Get(i);
    // Random membership probe into the bit vector.
    if (bits_->TestSim(ctx, static_cast<uint64_t>(key) - 1)) ++matches_;
    ctx.Compute(3);
  }
  ctx.Instructions((chunk_end - cursor_) * 8);
  TouchScratch(ctx, 1);

  AddWork(ctx, chunk_end - cursor_);
  cursor_ = chunk_end;
  if (cursor_ >= range_.end) {
    if (result_sink_ != nullptr) {
      // Atomic fold of the partial count (see ColumnScanJob::Step): probe
      // jobs may finish concurrently on parallel simulation lanes.
      std::atomic_ref<uint64_t>(*result_sink_)
          .fetch_add(matches_, std::memory_order_relaxed);
    }
    return false;
  }
  return true;
}

FkJoinQuery::FkJoinQuery(const storage::RawColumn* pk_column,
                         const storage::RawColumn* fk_column,
                         uint32_t key_count)
    : Query("Q3/fk_join"),
      pk_column_(pk_column),
      fk_column_(fk_column),
      bits_(key_count) {
  CATDB_CHECK(pk_column_ != nullptr && fk_column_ != nullptr);
  CATDB_CHECK(pk_column_->size() == key_count);
}

void FkJoinQuery::MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                                std::vector<std::unique_ptr<Job>>* out) {
  if (phase == 0) {
    result_ = 0;
    bits_.ClearAll();
    for (const RowRange& range :
         PartitionRows(pk_column_->size(), num_workers)) {
      out->push_back(
          std::make_unique<FkJoinBuildJob>(pk_column_, range, &bits_));
    }
    return;
  }
  CATDB_CHECK(phase == 1);
  for (const RowRange& range :
       PartitionRows(fk_column_->size(), num_workers)) {
    out->push_back(
        std::make_unique<FkJoinProbeJob>(fk_column_, range, &bits_, &result_));
  }
}

void FkJoinQuery::AttachSim(sim::Machine* machine) {
  CATDB_CHECK(machine != nullptr);
  CATDB_CHECK(pk_column_->attached() && fk_column_->attached());
  if (!bits_.attached()) bits_.AttachSim(machine);
}

}  // namespace catdb::engine
