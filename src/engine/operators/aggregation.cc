#include "engine/operators/aggregation.h"

#include <algorithm>

#include "common/check.h"
#include "simcache/cache_geometry.h"

namespace catdb::engine {

AggLocalJob::AggLocalJob(const storage::DictColumn* v_column,
                         const storage::DictColumn* g_column, RowRange range,
                         storage::AggHashTable* local_table,
                         storage::AggFunction func)
    : Job("agg_local", CacheUsage::kSensitive),
      v_column_(v_column),
      g_column_(g_column),
      range_(range),
      cursor_(range.begin),
      table_(local_table),
      func_(func) {
  CATDB_CHECK(v_column_ != nullptr && g_column_ != nullptr);
  CATDB_CHECK(table_ != nullptr);
}

bool AggLocalJob::Step(sim::ExecContext& ctx) {
  if (cursor_ >= range_.end) return false;
  const uint64_t chunk_end = std::min(range_.end, cursor_ + kRowsPerChunk);
  const storage::BitPackedVector& v_codes = v_column_->codes();
  const storage::BitPackedVector& g_codes = g_column_->codes();
  const storage::Dictionary& v_dict = v_column_->dict();

  // Sequential reads of the two packed code vectors: charge each chunk's
  // fresh lines as one batched run per vector (vectorized read), then walk
  // the rows host-side.
  v_codes.ReadRunSim(ctx, cursor_, chunk_end, &last_v_line_);
  g_codes.ReadRunSim(ctx, cursor_, chunk_end, &last_g_line_);
  for (uint64_t i = cursor_; i < chunk_end; ++i) {
    const uint32_t g_code = g_codes.Get(i);
    // Decode the aggregated value through the dictionary (random access).
    const int32_t value = v_dict.DecodeSim(ctx, v_codes.Get(i));
    // Upsert the running aggregate into the thread-local table (random
    // access).
    table_->UpsertSim(ctx, g_code, value, func_);
    ctx.Compute(6);
  }
  ctx.Instructions((chunk_end - cursor_) * 24);
  TouchScratch(ctx, 1);

  AddWork(ctx, chunk_end - cursor_);
  cursor_ = chunk_end;
  return cursor_ < range_.end;
}

AggMergeJob::AggMergeJob(std::vector<storage::AggHashTable*> locals,
                         storage::AggHashTable* global_table,
                         storage::AggFunction func)
    : Job("agg_merge", CacheUsage::kSensitive),
      locals_(std::move(locals)),
      global_(global_table),
      func_(func) {
  CATDB_CHECK(global_ != nullptr);
  CATDB_CHECK(!locals_.empty());
}

bool AggMergeJob::Step(sim::ExecContext& ctx) {
  if (table_index_ >= locals_.size()) return false;
  storage::AggHashTable* local = locals_[table_index_];
  const uint64_t end =
      std::min(local->capacity_slots(), slot_cursor_ + kSlotsPerChunk);

  // Sequential sweep over the local table's slot array: the chunk's slot
  // lines are one contiguous run. The per-chunk cursor used to reset, so a
  // line straddling two chunks is (still) charged in both.
  const uint64_t first_line =
      local->SimAddrOfSlot(slot_cursor_) / simcache::kLineSize;
  const uint64_t last_line =
      local->SimAddrOfSlot(end - 1) / simcache::kLineSize;
  ctx.ReadRun(first_line * simcache::kLineSize, last_line - first_line + 1);
  for (uint64_t slot = slot_cursor_; slot < end; ++slot) {
    if (local->SlotOccupied(slot)) {
      global_->UpsertSim(ctx, local->SlotKey(slot), local->SlotValue(slot),
                         func_);
      ctx.Compute(4);
    }
  }
  ctx.Instructions((end - slot_cursor_) * 4);
  AddWork(ctx, end - slot_cursor_);

  slot_cursor_ = end;
  if (slot_cursor_ >= local->capacity_slots()) {
    slot_cursor_ = 0;
    table_index_ += 1;
  }
  return table_index_ < locals_.size();
}

AggregationQuery::AggregationQuery(const storage::DictColumn* v_column,
                                   const storage::DictColumn* g_column,
                                   storage::AggFunction func)
    : Query("Q2/aggregation"),
      v_column_(v_column),
      g_column_(g_column),
      func_(func) {
  CATDB_CHECK(v_column_ != nullptr && g_column_ != nullptr);
  CATDB_CHECK(v_column_->size() == g_column_->size());
  global_ = storage::AggHashTable::ForExpectedKeys(g_column_->dict().size());
}

void AggregationQuery::EnsureTables(uint32_t num_workers) {
  if (locals_.size() == num_workers) return;
  // The worker count may change between runs (e.g. the co-scheduler runs
  // the same query alone and paired); rebuild the local tables for the new
  // parallelism. Never changes mid-iteration: MakePhaseJobs(0) is the only
  // caller with a fresh count.
  locals_.clear();
  for (uint32_t w = 0; w < num_workers; ++w) {
    auto table = std::make_unique<storage::AggHashTable>(
        storage::AggHashTable::ForExpectedKeys(g_column_->dict().size()));
    if (machine_ != nullptr) table->AttachSim(machine_);
    locals_.push_back(std::move(table));
  }
}

void AggregationQuery::MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                                     std::vector<std::unique_ptr<Job>>* out) {
  EnsureTables(num_workers);
  if (phase == 0) {
    for (auto& table : locals_) table->Clear();
    global_.Clear();
    const auto ranges = PartitionRows(v_column_->size(), num_workers);
    for (uint32_t w = 0; w < num_workers; ++w) {
      out->push_back(std::make_unique<AggLocalJob>(
          v_column_, g_column_, ranges[w], locals_[w].get(), func_));
    }
    return;
  }
  CATDB_CHECK(phase == 1);
  std::vector<storage::AggHashTable*> locals;
  for (auto& t : locals_) locals.push_back(t.get());
  // COUNT partials merge by summation; the other functions merge with
  // themselves.
  const storage::AggFunction merge_func =
      func_ == storage::AggFunction::kCount ? storage::AggFunction::kSum
                                            : func_;
  out->push_back(std::make_unique<AggMergeJob>(std::move(locals), &global_,
                                               merge_func));
}

uint64_t AggregationQuery::TotalWorkPerIteration() const {
  uint64_t merge_slots = 0;
  for (const auto& t : locals_) merge_slots += t->capacity_slots();
  // Before the first iteration the locals do not exist yet; approximate the
  // merge share with the global table's capacity (same order of magnitude).
  if (merge_slots == 0) merge_slots = global_.capacity_slots();
  return v_column_->size() + merge_slots;
}

void AggregationQuery::AttachSim(sim::Machine* machine) {
  CATDB_CHECK(machine != nullptr);
  CATDB_CHECK(v_column_->attached() && g_column_->attached());
  machine_ = machine;
  if (!global_.attached()) global_.AttachSim(machine);
  for (auto& t : locals_) {
    if (!t->attached()) t->AttachSim(machine);
  }
}

uint64_t AggregationQuery::HashTableFootprintBytes() const {
  uint64_t total = global_.SizeBytes();
  for (const auto& t : locals_) total += t->SizeBytes();
  return total;
}

}  // namespace catdb::engine
