#ifndef CATDB_ENGINE_OPERATORS_AGGREGATION_H_
#define CATDB_ENGINE_OPERATORS_AGGREGATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/job.h"
#include "engine/query.h"
#include "engine/row_partition.h"
#include "storage/agg_hash_table.h"
#include "storage/dict_column.h"

namespace catdb::engine {

/// Local phase of the hash aggregation (paper Query 2):
///   SELECT MAX(B.V), B.G FROM B GROUP BY B.G
///
/// Each worker reads its slice of the packed V and G code vectors
/// (sequential), *decodes* V through the dictionary (random access — this is
/// what makes dictionary size a cache knob), and upserts the running MAX
/// into its thread-local hash table keyed by the G code (random access —
/// the hash-table-size knob). Section IV-B analyses exactly these two
/// structures.
class AggLocalJob : public Job {
 public:
  AggLocalJob(const storage::DictColumn* v_column,
              const storage::DictColumn* g_column, RowRange range,
              storage::AggHashTable* local_table,
              storage::AggFunction func = storage::AggFunction::kMax);

  bool Step(sim::ExecContext& ctx) override;

  static constexpr uint64_t kRowsPerChunk = 128;

 private:
  const storage::DictColumn* v_column_;
  const storage::DictColumn* g_column_;
  RowRange range_;
  uint64_t cursor_;
  storage::AggHashTable* table_;
  storage::AggFunction func_;
  int64_t last_v_line_ = -1;
  int64_t last_g_line_ = -1;
};

/// Merge phase: folds the worker-local tables into the global result table
/// (single job; HANA merges thread-local results to build the global result,
/// Section II).
class AggMergeJob : public Job {
 public:
  /// `func` is the *merge* combinator: MAX/MIN/SUM merge with themselves,
  /// COUNT partials merge by summation (AggregationQuery picks this).
  AggMergeJob(std::vector<storage::AggHashTable*> locals,
              storage::AggHashTable* global_table,
              storage::AggFunction func = storage::AggFunction::kMax);

  bool Step(sim::ExecContext& ctx) override;

  static constexpr uint64_t kSlotsPerChunk = 512;

 private:
  std::vector<storage::AggHashTable*> locals_;
  storage::AggHashTable* global_;
  storage::AggFunction func_;
  size_t table_index_ = 0;
  uint64_t slot_cursor_ = 0;
};

/// Query 2: two phases (parallel local aggregation, then merge).
class AggregationQuery : public Query {
 public:
  /// `v_column` is aggregated (its dictionary size is the experiment's
  /// dictionary knob); `g_column` provides the group codes (its distinct
  /// count is the group-size knob). `func` is the aggregate; the paper's
  /// Query 2 computes MAX.
  AggregationQuery(const storage::DictColumn* v_column,
                   const storage::DictColumn* g_column,
                   storage::AggFunction func = storage::AggFunction::kMax);

  uint32_t num_phases() const override { return 2; }
  void MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                     std::vector<std::unique_ptr<Job>>* out) override;

  /// Eagerly creates (and, after AttachSim, registers) the worker-local
  /// hash tables for a known worker count. Normally they are created lazily
  /// at the first iteration; call this when their placement must happen
  /// under a specific allocation regime (e.g. page coloring).
  void PrepareWorkers(uint32_t num_workers) { EnsureTables(num_workers); }
  uint64_t TotalWorkPerIteration() const override;
  void AttachSim(sim::Machine* machine) override;

  /// The merged result of the last completed iteration.
  const storage::AggHashTable& global_table() const { return global_; }

  /// Total simulated bytes of all hash tables (locals + global) for the
  /// current worker count; the quantity Section IV-B relates to the LLC.
  uint64_t HashTableFootprintBytes() const;

 private:
  void EnsureTables(uint32_t num_workers);

  const storage::DictColumn* v_column_;
  const storage::DictColumn* g_column_;
  storage::AggFunction func_;
  std::vector<std::unique_ptr<storage::AggHashTable>> locals_;
  storage::AggHashTable global_;
  sim::Machine* machine_ = nullptr;
};

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_OPERATORS_AGGREGATION_H_
