#ifndef CATDB_ENGINE_OPERATORS_COLUMN_SCAN_H_
#define CATDB_ENGINE_OPERATORS_COLUMN_SCAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "engine/job.h"
#include "engine/query.h"
#include "engine/row_partition.h"
#include "storage/dict_column.h"

namespace catdb::engine {

/// One parallel slice of the SIMD column scan (paper Query 1):
///   SELECT COUNT(*) FROM A WHERE A.X > ?
///
/// The scan evaluates the range predicate directly on bit-packed codes
/// (order-preserving dictionary), touching every cache line of its slice
/// exactly once, strictly sequentially — the textbook cache-polluting,
/// prefetch-friendly, bandwidth-bound access pattern (Section IV-A).
class ColumnScanJob : public Job {
 public:
  /// `threshold_code`: predicate translated onto codes; counts codes >
  /// threshold_code. When `compute_result` is false the (host-side) counting
  /// is skipped for simulation speed; the simulated access trace is
  /// identical. `rows_per_chunk` sets the resumption granularity (the plan
  /// layer makes it a per-node knob); the default keeps historic behavior.
  ColumnScanJob(const storage::DictColumn* column, RowRange range,
                uint32_t threshold_code, bool compute_result,
                uint64_t* result_sink,
                uint64_t rows_per_chunk = kRowsPerChunk);

  /// Range-predicate variant: counts codes with lo_code <= code <= hi_code
  /// (a BETWEEN predicate mapped onto the order-preserving code domain).
  ColumnScanJob(const storage::DictColumn* column, RowRange range,
                uint32_t lo_code, uint32_t hi_code, bool compute_result,
                uint64_t* result_sink,
                uint64_t rows_per_chunk = kRowsPerChunk);

  bool Step(sim::ExecContext& ctx) override;

  /// Cycles the scan kernel spends processing one 64-byte line of packed
  /// codes (vectorized predicate evaluation).
  static constexpr uint32_t kCyclesPerLine = 24;
  static constexpr uint64_t kRowsPerChunk = 4096;

 private:
  const storage::DictColumn* column_;
  RowRange range_;
  uint64_t cursor_;
  uint32_t lo_code_;
  uint32_t hi_code_;
  bool compute_result_;
  uint64_t* result_sink_;
  uint64_t rows_per_chunk_;
  uint64_t matches_ = 0;
  // Last charged line index (relative to the code vector); avoids
  // double-charging a line shared by two chunks.
  int64_t last_line_ = -1;
};

/// Query 1: a single-phase parallel column scan with a fresh random
/// predicate parameter per iteration (Section III-A varies "?" after every
/// execution).
class ColumnScanQuery : public Query {
 public:
  ColumnScanQuery(const storage::DictColumn* column, uint64_t seed,
                  bool compute_results = false,
                  uint64_t rows_per_chunk = ColumnScanJob::kRowsPerChunk);

  uint32_t num_phases() const override { return 1; }
  void MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                     std::vector<std::unique_ptr<Job>>* out) override;
  uint64_t TotalWorkPerIteration() const override { return column_->size(); }
  void AttachSim(sim::Machine* machine) override;

  /// COUNT(*) of the most recently completed iteration (only meaningful when
  /// compute_results was requested).
  uint64_t last_result() const { return result_; }

 private:
  const storage::DictColumn* column_;
  Rng rng_;
  bool compute_results_;
  uint64_t rows_per_chunk_;
  uint64_t result_ = 0;
};

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_OPERATORS_COLUMN_SCAN_H_
