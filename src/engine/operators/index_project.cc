#include "engine/operators/index_project.h"

#include <algorithm>

#include "common/check.h"

namespace catdb::engine {

OltpBatchJob::OltpBatchJob(
    const storage::Table* table,
    const std::vector<const storage::InvertedIndex*>* key_indices,
    const std::vector<const storage::DictColumn*>* key_columns,
    const std::vector<const storage::DictColumn*>* projection,
    std::vector<uint32_t> target_rows)
    : Job("oltp_point_select", CacheUsage::kSensitive),
      table_(table),
      key_indices_(key_indices),
      key_columns_(key_columns),
      projection_(projection),
      target_rows_(std::move(target_rows)) {
  CATDB_CHECK(table_ != nullptr);
  CATDB_CHECK(key_indices_->size() == key_columns_->size());
}

bool OltpBatchJob::Step(sim::ExecContext& ctx) {
  if (cursor_ >= target_rows_.size()) return false;
  const uint64_t chunk_end =
      std::min<uint64_t>(target_rows_.size(), cursor_ + kQueriesPerChunk);

  for (uint64_t q = cursor_; q < chunk_end; ++q) {
    const uint32_t row = target_rows_[q];
    // Key lookup: read the posting list of the *most selective* key index
    // (the caller orders the indices by distinct count), which pins the
    // candidate set down to a handful of rows; the remaining key indices
    // are probed via their offset arrays only, to intersect the ranges.
    for (size_t k = 0; k < key_indices_->size(); ++k) {
      const uint32_t code = (*key_columns_)[k]->GetCode(row);
      if (k == 0) {
        (*key_indices_)[k]->LookupSim(ctx, code);
      } else {
        (*key_indices_)[k]->ProbeOffsetsSim(ctx, code);
      }
      ctx.Compute(8);
    }
    // Projection: packed-code read + dictionary decode per output column.
    for (const storage::DictColumn* col : *projection_) {
      col->GetValueSim(ctx, row);
      ctx.Compute(4);
    }
    ctx.Instructions(40 + 12 * projection_->size());
  }
  TouchScratch(ctx, 1);
  AddWork(ctx, chunk_end - cursor_);
  cursor_ = chunk_end;
  return cursor_ < target_rows_.size();
}

OltpQuery::OltpQuery(const storage::Table* table,
                     std::vector<std::string> key_columns,
                     std::vector<std::string> projection_columns,
                     uint32_t batch_size, uint64_t seed)
    : Query("S4/oltp_point_select"),
      table_(table),
      batch_size_(batch_size),
      rng_(seed) {
  CATDB_CHECK(table_ != nullptr);
  CATDB_CHECK(batch_size_ >= 1);
  // Order the key columns by distinct count, most selective first: the
  // point-lookup path reads the full posting list only of indices_[0].
  std::sort(key_columns.begin(), key_columns.end(),
            [this](const std::string& a, const std::string& b) {
              return table_->GetColumn(a)->dict().size() >
                     table_->GetColumn(b)->dict().size();
            });
  for (const std::string& name : key_columns) {
    const storage::DictColumn* col = table_->GetColumn(name);
    CATDB_CHECK(col != nullptr);
    key_columns_.push_back(col);
    indices_storage_.push_back(storage::InvertedIndex::Build(*col));
  }
  for (const auto& index : indices_storage_) indices_.push_back(&index);
  for (const std::string& name : projection_columns) {
    const storage::DictColumn* col = table_->GetColumn(name);
    CATDB_CHECK(col != nullptr);
    projection_.push_back(col);
  }
}

void OltpQuery::MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                              std::vector<std::unique_ptr<Job>>* out) {
  CATDB_CHECK(phase == 0);
  last_workers_ = num_workers;
  for (uint32_t w = 0; w < num_workers; ++w) {
    std::vector<uint32_t> rows(batch_size_);
    for (auto& r : rows) {
      r = static_cast<uint32_t>(rng_.Uniform(table_->num_rows()));
    }
    out->push_back(std::make_unique<OltpBatchJob>(
        table_, &indices_, &key_columns_, &projection_, std::move(rows)));
  }
}

uint64_t OltpQuery::TotalWorkPerIteration() const {
  return static_cast<uint64_t>(last_workers_ == 0 ? 1 : last_workers_) *
         batch_size_;
}

void OltpQuery::AttachSim(sim::Machine* machine) {
  CATDB_CHECK(machine != nullptr);
  for (const auto* col : key_columns_) CATDB_CHECK(col->attached());
  for (const auto* col : projection_) CATDB_CHECK(col->attached());
  for (auto& index : indices_storage_) {
    if (!index.attached()) index.AttachSim(machine);
  }
}

uint64_t OltpQuery::WorkingSetBytes() const {
  uint64_t total = 0;
  for (const auto& index : indices_storage_) total += index.SizeBytes();
  for (const auto* col : projection_) total += col->dict().SizeBytes();
  return total;
}

}  // namespace catdb::engine
