#ifndef CATDB_ENGINE_OPERATORS_INDEX_PROJECT_H_
#define CATDB_ENGINE_OPERATORS_INDEX_PROJECT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/job.h"
#include "engine/query.h"
#include "storage/inverted_index.h"
#include "storage/table.h"

namespace catdb::engine {

/// One batch of OLTP point queries against a wide table (the S/4HANA
/// workload of Section VI-E): each point query probes the inverted indices
/// of the key columns to locate a row, then projects `k` payload columns —
/// one packed-code read plus one dictionary decode per column. The OLTP
/// query's working set is therefore the key indices plus the projected
/// columns' dictionaries, which is what a concurrent scan pollutes.
class OltpBatchJob : public Job {
 public:
  /// Executes `batch_size` point queries drawn from `row_seeds` (precomputed
  /// random target rows, so concurrent runs are reproducible).
  OltpBatchJob(const storage::Table* table,
               const std::vector<const storage::InvertedIndex*>* key_indices,
               const std::vector<const storage::DictColumn*>* key_columns,
               const std::vector<const storage::DictColumn*>* projection,
               std::vector<uint32_t> target_rows);

  bool Step(sim::ExecContext& ctx) override;

  static constexpr uint64_t kQueriesPerChunk = 8;

 private:
  const storage::Table* table_;
  const std::vector<const storage::InvertedIndex*>* key_indices_;
  const std::vector<const storage::DictColumn*>* key_columns_;
  const std::vector<const storage::DictColumn*>* projection_;
  std::vector<uint32_t> target_rows_;
  uint64_t cursor_ = 0;
};

/// The OLTP query stream: one phase per iteration, one batch job per worker.
/// An "iteration" completes when every worker finished its batch; throughput
/// in point queries per second is iterations * workers * batch_size /
/// horizon.
class OltpQuery : public Query {
 public:
  /// `key_columns` name the (indexed) primary-key columns probed per query;
  /// `projection_columns` name the payload columns projected per query.
  OltpQuery(const storage::Table* table,
            std::vector<std::string> key_columns,
            std::vector<std::string> projection_columns, uint32_t batch_size,
            uint64_t seed);

  uint32_t num_phases() const override { return 1; }
  void MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                     std::vector<std::unique_ptr<Job>>* out) override;
  uint64_t TotalWorkPerIteration() const override;
  void AttachSim(sim::Machine* machine) override;

  uint32_t batch_size() const { return batch_size_; }

  /// Simulated footprint of the query's hot working set (indices plus
  /// projected dictionaries); Section VI-E argues this size governs the
  /// query's cache sensitivity.
  uint64_t WorkingSetBytes() const;

 private:
  const storage::Table* table_;
  std::vector<const storage::DictColumn*> key_columns_;
  std::vector<const storage::DictColumn*> projection_;
  std::vector<storage::InvertedIndex> indices_storage_;
  std::vector<const storage::InvertedIndex*> indices_;
  uint32_t batch_size_;
  Rng rng_;
  uint32_t last_workers_ = 0;
};

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_OPERATORS_INDEX_PROJECT_H_
