#include "engine/operators/column_scan.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "simcache/cache_geometry.h"

namespace catdb::engine {

ColumnScanJob::ColumnScanJob(const storage::DictColumn* column,
                             RowRange range, uint32_t threshold_code,
                             bool compute_result, uint64_t* result_sink,
                             uint64_t rows_per_chunk)
    : ColumnScanJob(column, range,
                    threshold_code == ~uint32_t{0} ? ~uint32_t{0}
                                                   : threshold_code + 1,
                    ~uint32_t{0}, compute_result, result_sink,
                    rows_per_chunk) {}

ColumnScanJob::ColumnScanJob(const storage::DictColumn* column,
                             RowRange range, uint32_t lo_code,
                             uint32_t hi_code, bool compute_result,
                             uint64_t* result_sink, uint64_t rows_per_chunk)
    : Job("column_scan", CacheUsage::kPolluting),
      column_(column),
      range_(range),
      cursor_(range.begin),
      lo_code_(lo_code),
      hi_code_(hi_code),
      compute_result_(compute_result),
      result_sink_(result_sink),
      rows_per_chunk_(rows_per_chunk) {
  CATDB_CHECK(column_ != nullptr);
  CATDB_CHECK(rows_per_chunk_ > 0);
}

bool ColumnScanJob::Step(sim::ExecContext& ctx) {
  if (cursor_ >= range_.end) return false;
  const uint64_t chunk_end = std::min(range_.end, cursor_ + rows_per_chunk_);
  const storage::BitPackedVector& codes = column_->codes();

  // Charge the packed-code lines this chunk touches as one batched run
  // (same lines, same order as the old per-line loop).
  const uint64_t lines = codes.ReadRunSim(ctx, cursor_, chunk_end, &last_line_);

  ctx.Compute(lines * kCyclesPerLine);
  ctx.Instructions(lines * 16);
  TouchScratch(ctx, 2);

  if (compute_result_) {
    for (uint64_t i = cursor_; i < chunk_end; ++i) {
      const uint32_t code = codes.Get(i);
      if (code >= lo_code_ && code <= hi_code_) ++matches_;
    }
  }

  AddWork(ctx, chunk_end - cursor_);
  cursor_ = chunk_end;
  if (cursor_ >= range_.end) {
    if (result_sink_ != nullptr) {
      // Atomic add: sibling jobs of the same query may fold their partial
      // counts concurrently when recorded on parallel simulation lanes.
      // Addition commutes, and the sink is read only behind the next phase
      // barrier, so the total is schedule-independent.
      std::atomic_ref<uint64_t>(*result_sink_)
          .fetch_add(matches_, std::memory_order_relaxed);
    }
    return false;
  }
  return true;
}

ColumnScanQuery::ColumnScanQuery(const storage::DictColumn* column,
                                 uint64_t seed, bool compute_results,
                                 uint64_t rows_per_chunk)
    : Query("Q1/column_scan"),
      column_(column),
      rng_(seed),
      compute_results_(compute_results),
      rows_per_chunk_(rows_per_chunk) {
  CATDB_CHECK(column_ != nullptr);
}

void ColumnScanQuery::MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                                    std::vector<std::unique_ptr<Job>>* out) {
  CATDB_CHECK(phase == 0);
  result_ = 0;
  // Fresh random predicate parameter, mapped onto the code domain via the
  // order-preserving dictionary (the scan never touches the dictionary at
  // execution time).
  const uint32_t threshold =
      static_cast<uint32_t>(rng_.Uniform(column_->dict().size()));
  for (const RowRange& range : PartitionRows(column_->size(), num_workers)) {
    out->push_back(std::make_unique<ColumnScanJob>(
        column_, range, threshold, compute_results_, &result_,
        rows_per_chunk_));
  }
}

void ColumnScanQuery::AttachSim(sim::Machine* machine) {
  // Datasets are attached by workload setup (they may be shared between
  // queries); the scan owns no auxiliary structures.
  (void)machine;
  CATDB_CHECK(column_->attached());
}

}  // namespace catdb::engine
