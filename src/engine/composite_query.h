#ifndef CATDB_ENGINE_COMPOSITE_QUERY_H_
#define CATDB_ENGINE_COMPOSITE_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/query.h"

namespace catdb::engine {

/// A query composed of child queries executed back to back: the phases of
/// every child run in order, with the usual barrier between phases. Used to
/// model multi-operator plans (e.g. TPC-H queries as scan -> join -> agg
/// pipelines) out of the engine's physical operators.
///
/// Each child keeps its own job annotations, so a composite automatically
/// mixes cache-usage classes (a plan's scan jobs stay polluting while its
/// aggregation jobs stay sensitive) — exactly how the paper's per-job CUID
/// integration behaves inside larger plans.
class CompositeQuery : public Query {
 public:
  explicit CompositeQuery(std::string name) : Query(std::move(name)) {}

  /// Appends a stage. Stages execute in insertion order.
  void AddStage(std::unique_ptr<Query> stage);

  uint32_t num_phases() const override;
  void MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                     std::vector<std::unique_ptr<Job>>* out) override;
  uint64_t TotalWorkPerIteration() const override;
  void AttachSim(sim::Machine* machine) override;

  size_t num_stages() const { return stages_.size(); }
  Query* stage(size_t i) { return stages_[i].get(); }

 private:
  std::vector<std::unique_ptr<Query>> stages_;
};

}  // namespace catdb::engine

#endif  // CATDB_ENGINE_COMPOSITE_QUERY_H_
