#include "engine/job_scheduler.h"

#include "cat/resctrl.h"
#include "common/check.h"
#include "obs/trace.h"

namespace catdb::engine {

JobScheduler::JobScheduler(sim::Machine* machine,
                           const PolicyConfig& policy_config)
    : machine_(machine),
      policy_(policy_config,
              machine->config().hierarchy.llc.CapacityBytes(),
              machine->config().hierarchy.llc.num_ways,
              machine->config().hierarchy.l2.CapacityBytes()) {
  CATDB_CHECK(machine_ != nullptr);
  core_group_override_.resize(machine_->num_cores());
  core_has_override_.resize(machine_->num_cores(), false);
}

void JobScheduler::SetCoreGroupOverride(uint32_t core, std::string group) {
  CATDB_CHECK(core < core_group_override_.size());
  core_group_override_[core] = std::move(group);
  core_has_override_[core] = true;
}

Status JobScheduler::SetupGroups() {
  cat::ResctrlFs& fs = machine_->resctrl();
  const PolicyConfig& cfg = policy_.config();

  if (cfg.instance_ways != 0) {
    // Experiment mode (Figures 4-6): restrict the whole instance by limiting
    // the default CLOS every thread belongs to.
    CATDB_RETURN_IF_ERROR(machine_->cat().SetClosMask(
        0, policy_.MaskForWays(cfg.instance_ways)));
  }

  if (!cfg.enabled) return Status::OK();

  CATDB_RETURN_IF_ERROR(fs.CreateGroup(kPollutingGroup));
  CATDB_RETURN_IF_ERROR(fs.WriteSchemata(
      kPollutingGroup, cat::FormatSchemataLine(policy_.polluting_mask())));
  CATDB_RETURN_IF_ERROR(fs.CreateGroup(kSharedGroup));
  CATDB_RETURN_IF_ERROR(fs.WriteSchemata(
      kSharedGroup, cat::FormatSchemataLine(policy_.shared_mask())));
  return Status::OK();
}

void JobScheduler::OnDispatch(Job* job, uint32_t core) {
  cat::ResctrlFs& fs = machine_->resctrl();
  const cat::ThreadId tid = core;  // one job-worker thread per core
  const std::string target =
      job_group_resolver_ ? job_group_resolver_(*job, core)
      : core_has_override_[core] ? core_group_override_[core]
                                 : policy_.GroupFor(*job);

  const bool same_group = fs.GroupOfTask(tid) == target;
  if (!same_group || !policy_.config().skip_redundant_assign) {
    // Kernel interaction: write the TID into the group's tasks file.
    const Status st = fs.AssignTask(tid, target);
    CATDB_CHECK(st.ok());
    machine_->ChargeReassociation(core);
    group_moves_ += 1;
    if (obs::EventTrace* trace = machine_->trace()) {
      obs::TraceEvent ev;
      ev.cycle = machine_->clock(core);
      ev.kind = obs::EventKind::kGroupMove;
      ev.core = core;
      ev.arg = tid;
      ev.label = target;
      trace->Record(std::move(ev));
    }
  } else {
    skipped_moves_ += 1;
  }

  // Kernel context-switch path: update the core's CLOS if needed.
  if (fs.OnContextSwitch(tid, core)) {
    machine_->Compute(core, machine_->config().pqr_write_cycles);
  }
}

}  // namespace catdb::engine
