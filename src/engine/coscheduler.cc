#include "engine/coscheduler.h"

#include <array>
#include <utility>

#include "common/check.h"
#include "engine/runner.h"
#include "sim/epoch_executor.h"

namespace catdb::engine {

std::vector<Round> PlanCacheAwareRounds(const std::vector<BatchItem>& batch) {
  std::vector<size_t> polluters;
  std::vector<size_t> sensitives;
  for (size_t i = 0; i < batch.size(); ++i) {
    // Adaptive queries are treated as polluting for pairing purposes: under
    // CAT they are safe partners either way (the policy resolves their mask
    // from the working-set hint at dispatch).
    if (batch[i].usage == CacheUsage::kSensitive) {
      sensitives.push_back(i);
    } else {
      polluters.push_back(i);
    }
  }

  std::vector<Round> rounds;
  // Pair polluters with each other.
  size_t p = 0;
  for (; p + 1 < polluters.size(); p += 2) {
    rounds.push_back(Round{{polluters[p], polluters[p + 1]}});
  }
  // A leftover polluter joins the first sensitive query, protected by CAT.
  size_t s = 0;
  if (p < polluters.size()) {
    if (s < sensitives.size()) {
      rounds.push_back(Round{{sensitives[s], polluters[p]}});
      ++s;
    } else {
      rounds.push_back(Round{{polluters[p]}});
    }
  }
  // Remaining sensitive queries run alone.
  for (; s < sensitives.size(); ++s) {
    rounds.push_back(Round{{sensitives[s]}});
  }
  return rounds;
}

std::vector<Round> PlanFifoRounds(const std::vector<BatchItem>& batch) {
  std::vector<Round> rounds;
  for (size_t i = 0; i < batch.size(); i += 2) {
    Round round;
    round.items.push_back(i);
    if (i + 1 < batch.size()) round.items.push_back(i + 1);
    rounds.push_back(round);
  }
  return rounds;
}

uint32_t RoundCoreSplit(uint32_t num_cores, size_t round_index) {
  CATDB_CHECK(num_cores >= 2);
  // Even counts split evenly. For odd counts the old `k * cores / 2`
  // arithmetic always handed the extra core to the second stream; alternate
  // it by round parity instead so neither batch position is favoured.
  if (num_cores % 2 == 0) return num_cores / 2;
  return round_index % 2 == 0 ? (num_cores + 1) / 2 : num_cores / 2;
}

RoundsReport ExecuteRoundsReport(sim::Machine* machine,
                                 const std::vector<BatchItem>& batch,
                                 const std::vector<Round>& rounds,
                                 const PolicyConfig& policy) {
  CATDB_CHECK(machine != nullptr);
  const uint32_t cores = machine->num_cores();
  CATDB_CHECK(cores >= 2);

  RoundsReport out;
  for (size_t round_index = 0; round_index < rounds.size(); ++round_index) {
    const Round& round = rounds[round_index];
    CATDB_CHECK(round.items.size() == 1 || round.items.size() == 2);
    std::vector<StreamSpec> specs;
    if (round.items.size() == 1) {
      const BatchItem& item = batch[round.items[0]];
      std::vector<uint32_t> all;
      for (uint32_t c = 0; c < cores; ++c) all.push_back(c);
      specs.push_back(StreamSpec{item.query, all, item.iterations});
    } else {
      const uint32_t first = RoundCoreSplit(cores, round_index);
      const std::array<std::pair<uint32_t, uint32_t>, 2> ranges = {
          std::pair<uint32_t, uint32_t>{0, first},
          std::pair<uint32_t, uint32_t>{first, cores}};
      uint32_t covered = 0;
      for (size_t k = 0; k < 2; ++k) {
        const BatchItem& item = batch[round.items[k]];
        std::vector<uint32_t> part;
        for (uint32_t c = ranges[k].first; c < ranges[k].second; ++c) {
          part.push_back(c);
        }
        CATDB_CHECK(!part.empty());
        covered += static_cast<uint32_t>(part.size());
        specs.push_back(StreamSpec{item.query, part, item.iterations});
      }
      // Every core is used exactly once per round.
      CATDB_CHECK(covered == cores);
    }
    // Run the round to completion (every stream reaches its iteration
    // budget) and add its duration to the makespan.
    machine->ResetForRun();
    machine->resctrl().Reset();
    JobScheduler scheduler(machine, policy);
    CATDB_CHECK(scheduler.SetupGroups().ok());
    const std::unique_ptr<sim::Executor> executor = sim::MakeExecutor(machine);
    std::vector<std::unique_ptr<QueryStream>> streams;
    for (const StreamSpec& spec : specs) {
      streams.push_back(std::make_unique<QueryStream>(
          spec.query, spec.cores, &scheduler, spec.max_iterations));
      for (uint32_t core : spec.cores) {
        executor->Attach(core, streams.back().get());
      }
    }
    const uint64_t duration = executor->RunUntilIdle();
    out.makespan_cycles += duration;
    out.round_cycles.push_back(duration);
    out.round_reports.push_back(
        CollectRunReport(machine, scheduler, streams, duration));
  }
  return out;
}

uint64_t ExecuteRounds(sim::Machine* machine,
                       const std::vector<BatchItem>& batch,
                       const std::vector<Round>& rounds,
                       const PolicyConfig& policy) {
  return ExecuteRoundsReport(machine, batch, rounds, policy).makespan_cycles;
}

}  // namespace catdb::engine
