#include "engine/coscheduler.h"

#include "common/check.h"
#include "engine/runner.h"

namespace catdb::engine {

std::vector<Round> PlanCacheAwareRounds(const std::vector<BatchItem>& batch) {
  std::vector<size_t> polluters;
  std::vector<size_t> sensitives;
  for (size_t i = 0; i < batch.size(); ++i) {
    // Adaptive queries are treated as polluting for pairing purposes: under
    // CAT they are safe partners either way (the policy resolves their mask
    // from the working-set hint at dispatch).
    if (batch[i].usage == CacheUsage::kSensitive) {
      sensitives.push_back(i);
    } else {
      polluters.push_back(i);
    }
  }

  std::vector<Round> rounds;
  // Pair polluters with each other.
  size_t p = 0;
  for (; p + 1 < polluters.size(); p += 2) {
    rounds.push_back(Round{{polluters[p], polluters[p + 1]}});
  }
  // A leftover polluter joins the first sensitive query, protected by CAT.
  size_t s = 0;
  if (p < polluters.size()) {
    if (s < sensitives.size()) {
      rounds.push_back(Round{{sensitives[s], polluters[p]}});
      ++s;
    } else {
      rounds.push_back(Round{{polluters[p]}});
    }
  }
  // Remaining sensitive queries run alone.
  for (; s < sensitives.size(); ++s) {
    rounds.push_back(Round{{sensitives[s]}});
  }
  return rounds;
}

std::vector<Round> PlanFifoRounds(const std::vector<BatchItem>& batch) {
  std::vector<Round> rounds;
  for (size_t i = 0; i < batch.size(); i += 2) {
    Round round;
    round.items.push_back(i);
    if (i + 1 < batch.size()) round.items.push_back(i + 1);
    rounds.push_back(round);
  }
  return rounds;
}

uint64_t ExecuteRounds(sim::Machine* machine,
                       const std::vector<BatchItem>& batch,
                       const std::vector<Round>& rounds,
                       const PolicyConfig& policy) {
  CATDB_CHECK(machine != nullptr);
  const uint32_t cores = machine->num_cores();
  CATDB_CHECK(cores >= 2);

  uint64_t makespan = 0;
  for (const Round& round : rounds) {
    CATDB_CHECK(round.items.size() == 1 || round.items.size() == 2);
    std::vector<StreamSpec> specs;
    if (round.items.size() == 1) {
      const BatchItem& item = batch[round.items[0]];
      std::vector<uint32_t> all;
      for (uint32_t c = 0; c < cores; ++c) all.push_back(c);
      specs.push_back(StreamSpec{item.query, all, item.iterations});
    } else {
      for (size_t k = 0; k < 2; ++k) {
        const BatchItem& item = batch[round.items[k]];
        std::vector<uint32_t> half;
        for (uint32_t c = static_cast<uint32_t>(k) * cores / 2;
             c < (static_cast<uint32_t>(k) + 1) * cores / 2; ++c) {
          half.push_back(c);
        }
        specs.push_back(StreamSpec{item.query, half, item.iterations});
      }
    }
    // Run the round to completion (every stream reaches its iteration
    // budget) and add its duration to the makespan.
    machine->ResetForRun();
    machine->resctrl().Reset();
    JobScheduler scheduler(machine, policy);
    CATDB_CHECK(scheduler.SetupGroups().ok());
    sim::Executor executor(machine);
    std::vector<std::unique_ptr<QueryStream>> streams;
    for (const StreamSpec& spec : specs) {
      streams.push_back(std::make_unique<QueryStream>(
          spec.query, spec.cores, &scheduler, spec.max_iterations));
      for (uint32_t core : spec.cores) {
        executor.Attach(core, streams.back().get());
      }
    }
    makespan += executor.RunUntilIdle();
  }
  return makespan;
}

}  // namespace catdb::engine
