#include "engine/composite_query.h"

#include "common/check.h"

namespace catdb::engine {

void CompositeQuery::AddStage(std::unique_ptr<Query> stage) {
  CATDB_CHECK(stage != nullptr);
  stages_.push_back(std::move(stage));
}

uint32_t CompositeQuery::num_phases() const {
  uint32_t total = 0;
  for (const auto& s : stages_) total += s->num_phases();
  return total;
}

void CompositeQuery::MakePhaseJobs(uint32_t phase, uint32_t num_workers,
                                   std::vector<std::unique_ptr<Job>>* out) {
  for (const auto& s : stages_) {
    if (phase < s->num_phases()) {
      s->MakePhaseJobs(phase, num_workers, out);
      return;
    }
    phase -= s->num_phases();
  }
  CATDB_CHECK(false);  // phase out of range
}

uint64_t CompositeQuery::TotalWorkPerIteration() const {
  uint64_t total = 0;
  for (const auto& s : stages_) total += s->TotalWorkPerIteration();
  return total;
}

void CompositeQuery::AttachSim(sim::Machine* machine) {
  for (const auto& s : stages_) s->AttachSim(machine);
}

}  // namespace catdb::engine
