#ifndef CATDB_SERVE_ARRIVAL_H_
#define CATDB_SERVE_ARRIVAL_H_

#include <cstdint>
#include <vector>

namespace catdb::serve {

/// Shape of one tenant's open-arrival process.
enum class ArrivalKind {
  /// Memoryless arrivals: exponential interarrival gaps.
  kPoisson,
  /// Bursty ON-OFF (interrupted Poisson) arrivals: exponentially distributed
  /// ON periods with Poisson arrivals inside them, alternating with silent
  /// exponentially distributed OFF periods. Same tail pressure knob as the
  /// classic MMPP burst model, with two parameters instead of four.
  kOnOff,
};

/// Parameters of one tenant's arrival process. All times are in simulated
/// cycles.
struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Mean gap between arrivals while the source is ON (for kPoisson the
  /// source is always ON, so this is 1/lambda of the whole process).
  uint64_t mean_interarrival_cycles = 1'000'000;
  /// kOnOff only: mean lengths of the ON and OFF periods.
  uint64_t mean_on_cycles = 10'000'000;
  uint64_t mean_off_cycles = 10'000'000;
};

/// One admitted-or-not query arrival: when, and from which tenant.
struct Arrival {
  uint64_t cycle = 0;
  uint32_t tenant = 0;
};

/// Generates one tenant's arrival instants in [0, horizon_cycles),
/// deterministically from `seed` (seed the per-tenant generators with
/// distinct values — e.g. hash(run_seed, tenant) — so the merged trace is
/// independent of how many tenants exist and of the host thread count).
std::vector<uint64_t> GenerateArrivalCycles(const ArrivalConfig& config,
                                            uint64_t horizon_cycles,
                                            uint64_t seed);

/// Merges per-tenant arrival traces (index = tenant id) into one
/// time-ordered sequence; simultaneous arrivals order by tenant id, so the
/// merge is a deterministic function of its inputs.
std::vector<Arrival> MergeArrivals(
    const std::vector<std::vector<uint64_t>>& per_tenant);

}  // namespace catdb::serve

#endif  // CATDB_SERVE_ARRIVAL_H_
