#include "serve/latency.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace catdb::serve {

uint64_t PercentileSorted(const std::vector<uint64_t>& sorted, double pct) {
  CATDB_CHECK(!sorted.empty());
  CATDB_CHECK(pct > 0.0 && pct <= 100.0);
  const double n = static_cast<double>(sorted.size());
  size_t rank = static_cast<size_t>(std::ceil(pct / 100.0 * n));
  rank = std::max<size_t>(1, std::min<size_t>(rank, sorted.size()));
  return sorted[rank - 1];
}

LatencySummary Summarize(std::vector<uint64_t> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.p50 = PercentileSorted(samples, 50.0);
  s.p95 = PercentileSorted(samples, 95.0);
  s.p99 = PercentileSorted(samples, 99.0);
  s.max = samples.back();
  uint64_t sum = 0;
  for (uint64_t v : samples) sum += v;
  s.mean = static_cast<double>(sum) / static_cast<double>(s.count);
  return s;
}

LatencyRecorder::LatencyRecorder(size_t num_tenants, size_t num_classes)
    : tenant_latency_(num_tenants),
      class_latency_(num_classes),
      class_histogram_(num_classes,
                       std::vector<uint64_t>(kHistogramBuckets, 0)),
      tenant_rejected_(num_tenants, 0),
      class_rejected_(num_classes, 0) {}

void LatencyRecorder::RecordCompletion(uint32_t tenant, uint32_t class_id,
                                       uint64_t queue_wait_cycles,
                                       uint64_t latency_cycles) {
  CATDB_DCHECK(tenant < tenant_latency_.size());
  CATDB_DCHECK(class_id < class_latency_.size());
  latency_.push_back(latency_cycles);
  queue_wait_.push_back(queue_wait_cycles);
  tenant_latency_[tenant].push_back(latency_cycles);
  class_latency_[class_id].push_back(latency_cycles);
  size_t bucket = 0;
  while (bucket + 1 < kHistogramBuckets &&
         latency_cycles >= (uint64_t{1} << (bucket + 1))) {
    ++bucket;
  }
  class_histogram_[class_id][bucket] += 1;
}

void LatencyRecorder::RecordRejection(uint32_t tenant, uint32_t class_id) {
  CATDB_DCHECK(tenant < tenant_rejected_.size());
  CATDB_DCHECK(class_id < class_rejected_.size());
  tenant_rejected_[tenant] += 1;
  class_rejected_[class_id] += 1;
  rejected_total_ += 1;
}

LatencySummary LatencyRecorder::OverallLatency() const {
  return Summarize(latency_);
}

LatencySummary LatencyRecorder::OverallQueueWait() const {
  return Summarize(queue_wait_);
}

LatencySummary LatencyRecorder::TenantLatency(uint32_t tenant) const {
  return Summarize(tenant_latency_[tenant]);
}

LatencySummary LatencyRecorder::ClassLatency(uint32_t class_id) const {
  return Summarize(class_latency_[class_id]);
}

}  // namespace catdb::serve
