#ifndef CATDB_SERVE_SERVING_ENGINE_H_
#define CATDB_SERVE_SERVING_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/arrival.h"
#include "serve/latency.h"
#include "serve/request.h"
#include "sim/machine.h"
#include "simcache/shadow_profiler.h"

namespace catdb::serve {

/// Partitioning policy under which a serving run executes.
enum class ServePolicyKind {
  /// No partitioning: every query runs in the default group (full LLC).
  kShared,
  /// The paper's static scheme at class granularity: polluting-annotated
  /// classes are confined to the low polluting-ways mask, everyone else
  /// keeps the full cache. Annotation-driven, measurement-free.
  kStatic,
  /// UCP lookahead sizing over round-robin tenant clusters: the measurement
  /// loop runs, but tenants land in clusters blindly (isolates the value of
  /// similarity grouping in the next policy).
  kLookahead,
  /// The full online loop: k-means MRC-similarity clustering of tenants over
  /// their shadow-tag curves, pooled per-cluster MRCs sized with UCP
  /// lookahead. Serves far more tenants than hardware CLOS.
  kMrcCluster,
};

/// Report name of a policy ("shared", "static", "lookahead", "mrc_cluster").
const char* ServePolicyName(ServePolicyKind policy);

/// One tenant: its query class and its arrival process.
struct TenantSpec {
  uint32_t class_id = 0;
  ArrivalConfig arrival;
};

/// Configuration of one serving run.
struct ServeConfig {
  std::vector<RequestClass> classes;
  std::vector<TenantSpec> tenants;
  /// Cores that serve queries (every listed core runs one worker).
  std::vector<uint32_t> cores;
  uint64_t horizon_cycles = 0;
  /// Admission bound on the *waiting* queue (in-service queries excluded).
  /// An arrival finding the queue full is rejected, counted, and never
  /// simulated — bounded queueing, the open-system analogue of load
  /// shedding. 0 = queries are only admitted straight into an idle worker.
  size_t queue_capacity = 64;
  /// Decision-interval length for the measured policies (kLookahead,
  /// kMrcCluster): each interval the shadow profiles are snapshotted, the
  /// clustering re-runs, and the cluster schemata are re-programmed.
  uint64_t interval_cycles = 10'000'000;
  /// Cluster budget for the measured policies (resource groups consumed;
  /// must leave one CLOS for the default group).
  uint32_t max_clusters = 8;
  /// Lines of the shared region streamed by polluting classes.
  uint64_t shared_region_lines = 1 << 15;
  /// Seeds the arrival processes and stream offsets (per-tenant generators
  /// derive their own seeds from it).
  uint64_t seed = 42;
  simcache::ShadowProfilerConfig profiler;
};

/// Everything one serving run reports.
struct ServingRunReport {
  std::string policy;
  uint64_t horizon_cycles = 0;

  // Admission accounting.
  uint64_t arrivals = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  /// Admitted but not completed when the horizon cut the run.
  uint64_t in_flight_at_horizon = 0;
  uint64_t max_queue_depth = 0;

  // Control-plane activity.
  uint64_t intervals = 0;
  uint64_t schemata_writes = 0;
  uint64_t group_moves = 0;
  /// Clusters in use after the final interval (measured policies only).
  uint32_t num_clusters = 0;
  /// Final cluster of each tenant (empty for unmeasured policies).
  std::vector<uint32_t> cluster_of_tenant;
  /// Final capacity mask of each cluster (measured policies only).
  std::vector<uint64_t> cluster_masks;

  // Latency digests (cycles).
  LatencySummary latency;
  LatencySummary queue_wait;
  std::vector<std::string> class_names;
  std::vector<LatencySummary> class_latency;
  std::vector<uint64_t> class_completed;
  std::vector<uint64_t> class_rejected;
  std::vector<std::vector<uint64_t>> class_histogram;
  std::vector<LatencySummary> tenant_latency;
  std::vector<uint64_t> tenant_rejected;

  double llc_hit_ratio = 0.0;
};

/// Runs one open-arrival serving experiment under `policy`: generates the
/// arrival trace from `config.seed`, admits queries through the bounded
/// queue, executes them on `config.cores` via the discrete-event executor
/// and the JobScheduler, drives the measured policies' interval loop, and
/// digests per-query latencies. Deterministic: equal (machine config,
/// ServeConfig, policy) yield byte-identical reports on any host and at any
/// sweep-harness `--jobs` value.
ServingRunReport ServeWorkload(sim::Machine* machine,
                               const ServeConfig& config,
                               ServePolicyKind policy);

}  // namespace catdb::serve

#endif  // CATDB_SERVE_SERVING_ENGINE_H_
