#ifndef CATDB_SERVE_LATENCY_H_
#define CATDB_SERVE_LATENCY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace catdb::serve {

/// Tail-latency digest of one sample population (cycles). Percentiles use
/// the nearest-rank definition (ceil(p/100 * n)-th smallest sample), so every
/// reported value is an actual observation — no interpolation, and exact
/// checks against a sorted reference are possible in tests.
struct LatencySummary {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  double mean = 0.0;
};

/// Nearest-rank percentile of an ascending-sorted, non-empty sample vector.
uint64_t PercentileSorted(const std::vector<uint64_t>& sorted, double pct);

/// Digests `samples` (unsorted; taken by value and sorted internally). An
/// empty population yields the all-zero summary.
LatencySummary Summarize(std::vector<uint64_t> samples);

/// Collects per-query latency observations for one serving run: end-to-end
/// latency (finish - arrival) and queue wait (dispatch - arrival), sliced
/// per tenant and per class, plus per-class log2 latency histograms and
/// admission-rejection counts.
class LatencyRecorder {
 public:
  /// Histograms bucket by floor(log2(latency)): bucket b holds samples in
  /// [2^b, 2^(b+1)), bucket 0 also holds latency 0; 2^47 cycles (~ a day of
  /// simulated time at any plausible clock) caps the range.
  static constexpr size_t kHistogramBuckets = 48;

  LatencyRecorder(size_t num_tenants, size_t num_classes);

  void RecordCompletion(uint32_t tenant, uint32_t class_id,
                        uint64_t queue_wait_cycles, uint64_t latency_cycles);
  void RecordRejection(uint32_t tenant, uint32_t class_id);

  uint64_t completed() const { return latency_.size(); }
  uint64_t rejected() const { return rejected_total_; }
  uint64_t class_completed(uint32_t c) const {
    return class_latency_[c].size();
  }
  uint64_t class_rejected(uint32_t c) const { return class_rejected_[c]; }
  uint64_t tenant_rejected(uint32_t t) const { return tenant_rejected_[t]; }

  LatencySummary OverallLatency() const;
  LatencySummary OverallQueueWait() const;
  LatencySummary TenantLatency(uint32_t tenant) const;
  LatencySummary ClassLatency(uint32_t class_id) const;
  const std::vector<uint64_t>& ClassHistogram(uint32_t class_id) const {
    return class_histogram_[class_id];
  }

 private:
  std::vector<uint64_t> latency_;
  std::vector<uint64_t> queue_wait_;
  std::vector<std::vector<uint64_t>> tenant_latency_;
  std::vector<std::vector<uint64_t>> class_latency_;
  std::vector<std::vector<uint64_t>> class_histogram_;
  std::vector<uint64_t> tenant_rejected_;
  std::vector<uint64_t> class_rejected_;
  uint64_t rejected_total_ = 0;
};

}  // namespace catdb::serve

#endif  // CATDB_SERVE_LATENCY_H_
