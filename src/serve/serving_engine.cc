#include "serve/serving_engine.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "cat/resctrl.h"
#include "common/bits.h"
#include "common/check.h"
#include "engine/job_scheduler.h"
#include "engine/partitioning_policy.h"
#include "policy/way_allocator.h"
#include "sim/epoch_executor.h"
#include "simcache/cache_geometry.h"

namespace catdb::serve {

namespace {

uint64_t SplitMix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string ClusterGroupName(uint32_t cluster) {
  return "cluster" + std::to_string(cluster);
}

/// The open-arrival admission/queueing stage in front of the JobScheduler.
///
/// The discrete-event executor re-polls idle cores only when a task finishes
/// (and at the start of each RunUntil), so a time-triggered source must
/// never answer "nothing yet, ask me later" while arrivals remain — that
/// request would be lost. Instead the source *eager-arms*: when the waiting
/// queue is empty it hands the idle core the earliest pending arrival with
/// `ready_time` set to its arrival instant, and the executor parks the core
/// until then. Armed arrivals always satisfy admission (the waiting room
/// was empty at their instant, and a server was free: straight to service).
///
/// All other arrivals are folded into the waiting queue by
/// ProcessArrivalsUpTo(frontier): between task-finish events no dispatch or
/// departure can alter the queue, so admitting the interval's arrivals in
/// time order against the capacity bound at the next event reproduces
/// continuous-time bounded-FCFS admission exactly (up to the executor's
/// chunk-granularity finish jitter, which is deterministic).
class ServingSource : public sim::TaskSource {
 public:
  ServingSource(sim::Machine* machine, engine::JobScheduler* scheduler,
                const ServeConfig& config, std::vector<Arrival> arrivals,
                LatencyRecorder* recorder,
                std::vector<uint64_t> tenant_private_vbase,
                uint64_t shared_vbase)
      : machine_(machine),
        scheduler_(scheduler),
        config_(config),
        arrivals_(std::move(arrivals)),
        recorder_(recorder),
        tenant_private_vbase_(std::move(tenant_private_vbase)),
        shared_vbase_(shared_vbase) {}

  sim::Task* NextTask(uint32_t core) override {
    frontier_ = std::max(frontier_, machine_->clock(core));
    ProcessArrivalsUpTo(frontier_);
    if (!waiting_.empty()) {
      RequestJob* job = waiting_.front();
      waiting_.pop_front();
      // Re-stamp readiness: the polling core's clock may trail the frontier
      // another core's finish advanced, and a dispatch must never precede
      // the query's own arrival.
      job->set_ready_time(job->arrival_cycle());
      return job;
    }
    if (next_arrival_ < arrivals_.size()) {
      const Arrival a = arrivals_[next_arrival_++];
      RequestJob* job = CreateJob(a);
      job->set_ready_time(a.cycle);
      admitted_ += 1;
      return job;
    }
    return nullptr;
  }

  void TaskDispatched(sim::Task* task, uint32_t core) override {
    auto* job = static_cast<RequestJob*>(task);
    job->set_dispatch_cycle(machine_->clock(core));
    // Tag the core's shadow observations with the tenant, not the CLOS:
    // clustered tenants share a CLOS, but the allocator needs per-tenant
    // curves.
    machine_->hierarchy().SetShadowProfileTag(core, job->tenant());
    scheduler_->OnDispatch(job, core);
  }

  void TaskFinished(sim::Task* task, uint32_t /*core*/,
                    uint64_t clock) override {
    auto* job = static_cast<RequestJob*>(task);
    job->set_finish_cycle(clock);
    frontier_ = std::max(frontier_, clock);
    recorder_->RecordCompletion(job->tenant(), job->class_id(),
                                job->dispatch_cycle() - job->arrival_cycle(),
                                clock - job->arrival_cycle());
    completed_ += 1;
  }

  uint64_t arrivals_total() const { return arrivals_.size(); }
  uint64_t admitted() const { return admitted_; }
  uint64_t completed() const { return completed_; }
  uint64_t max_queue_depth() const { return max_queue_depth_; }

 private:
  void ProcessArrivalsUpTo(uint64_t t) {
    while (next_arrival_ < arrivals_.size() &&
           arrivals_[next_arrival_].cycle <= t) {
      const Arrival a = arrivals_[next_arrival_++];
      if (waiting_.size() >= config_.queue_capacity) {
        const TenantSpec& ts = config_.tenants[a.tenant];
        recorder_->RecordRejection(a.tenant, ts.class_id);
        continue;
      }
      RequestJob* job = CreateJob(a);
      waiting_.push_back(job);
      admitted_ += 1;
      max_queue_depth_ =
          std::max<uint64_t>(max_queue_depth_, waiting_.size());
    }
  }

  RequestJob* CreateJob(const Arrival& a) {
    const TenantSpec& ts = config_.tenants[a.tenant];
    const RequestClass& klass = config_.classes[ts.class_id];
    const uint64_t offset =
        config_.shared_region_lines == 0
            ? 0
            : SplitMix64(config_.seed ^
                         (0xA5A5A5A55A5A5A5AULL + ordinal_)) %
                  config_.shared_region_lines;
    ordinal_ += 1;
    jobs_.push_back(std::make_unique<RequestJob>(
        klass, a.tenant, ts.class_id, tenant_private_vbase_[a.tenant],
        shared_vbase_, config_.shared_region_lines, offset));
    RequestJob* job = jobs_.back().get();
    job->set_arrival_cycle(a.cycle);
    return job;
  }

  sim::Machine* machine_;
  engine::JobScheduler* scheduler_;
  const ServeConfig& config_;
  std::vector<Arrival> arrivals_;
  LatencyRecorder* recorder_;
  std::vector<uint64_t> tenant_private_vbase_;
  uint64_t shared_vbase_;

  std::vector<std::unique_ptr<RequestJob>> jobs_;
  std::deque<RequestJob*> waiting_;
  size_t next_arrival_ = 0;
  uint64_t frontier_ = 0;  // latest event clock seen (admission clock)
  uint64_t ordinal_ = 0;   // admitted-request counter (stream offsets)
  uint64_t admitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t max_queue_depth_ = 0;
};

}  // namespace

const char* ServePolicyName(ServePolicyKind policy) {
  switch (policy) {
    case ServePolicyKind::kShared:
      return "shared";
    case ServePolicyKind::kStatic:
      return "static";
    case ServePolicyKind::kLookahead:
      return "lookahead";
    case ServePolicyKind::kMrcCluster:
      return "mrc_cluster";
  }
  return "unknown";
}

ServingRunReport ServeWorkload(sim::Machine* machine,
                               const ServeConfig& config,
                               ServePolicyKind policy) {
  CATDB_CHECK(machine != nullptr);
  CATDB_CHECK(!config.classes.empty());
  CATDB_CHECK(!config.tenants.empty());
  CATDB_CHECK(!config.cores.empty());
  CATDB_CHECK(config.horizon_cycles >= 1);
  CATDB_CHECK(config.interval_cycles >= 1);
  CATDB_CHECK(config.max_clusters >= 1);
  for (const TenantSpec& t : config.tenants) {
    CATDB_CHECK(t.class_id < config.classes.size());
  }
  for (uint32_t core : config.cores) {
    CATDB_CHECK(core < machine->num_cores());
  }

  const size_t num_tenants = config.tenants.size();
  const size_t num_classes = config.classes.size();
  const bool measured = policy == ServePolicyKind::kLookahead ||
                        policy == ServePolicyKind::kMrcCluster;

  machine->ResetForRun();
  machine->resctrl().Reset();
  cat::ResctrlFs& fs = machine->resctrl();
  const uint32_t llc_ways = machine->config().hierarchy.llc.num_ways;
  const uint64_t full_mask = MaskForWays(llc_ways);

  // Simulated data: one private working-set region per tenant (sized by its
  // class) and one shared streaming region. Allocation is idempotent across
  // runs only through fresh Machine instances — sweep cells construct their
  // own machine, so regions never accumulate.
  std::vector<uint64_t> tenant_private_vbase(num_tenants, 0);
  for (size_t t = 0; t < num_tenants; ++t) {
    const RequestClass& klass = config.classes[config.tenants[t].class_id];
    if (klass.private_lines > 0) {
      tenant_private_vbase[t] =
          machine->AllocVirtual(klass.private_lines * simcache::kLineSize);
    }
  }
  uint64_t shared_vbase = 0;
  if (config.shared_region_lines > 0) {
    shared_vbase =
        machine->AllocVirtual(config.shared_region_lines * simcache::kLineSize);
  }

  engine::JobScheduler scheduler(machine, engine::PolicyConfig{});
  CATDB_CHECK(scheduler.SetupGroups().ok());

  // group_of_tenant is the routing table the dispatch-time resolver reads;
  // the interval loop rewrites it as the clustering evolves.
  std::vector<std::string> group_of_tenant(num_tenants, "");
  if (policy == ServePolicyKind::kStatic) {
    engine::PolicyConfig static_cfg;  // paper defaults: 2 of 20 ways
    const uint32_t polluting_ways =
        std::min(std::max<uint32_t>(static_cfg.polluting_ways, 1), llc_ways);
    CATDB_CHECK(fs.CreateGroup(engine::kPollutingGroup).ok());
    CATDB_CHECK(fs.WriteSchemata(
                      engine::kPollutingGroup,
                      cat::FormatSchemataLine(MaskForWays(polluting_ways)))
                    .ok());
    for (size_t t = 0; t < num_tenants; ++t) {
      const RequestClass& klass = config.classes[config.tenants[t].class_id];
      if (klass.cuid == engine::CacheUsage::kPolluting) {
        group_of_tenant[t] = engine::kPollutingGroup;
      }
    }
  }
  if (measured) {
    for (uint32_t c = 0; c < config.max_clusters; ++c) {
      CATDB_CHECK(fs.CreateGroup(ClusterGroupName(c)).ok());
      CATDB_CHECK(fs.WriteSchemata(ClusterGroupName(c),
                                   cat::FormatSchemataLine(full_mask))
                      .ok());
    }
  }
  scheduler.SetJobGroupResolver(
      [&group_of_tenant](const engine::Job& job, uint32_t /*core*/) {
        return group_of_tenant[static_cast<const RequestJob&>(job).tenant()];
      });

  // Per-tenant shadow profiling (measured policies): the profiler is sized
  // by tenant count, not CLOS count — dispatch retags each core with the
  // running tenant, so 64 tenants profile independently through 16 CLOS.
  simcache::ShadowProfilerConfig prof_cfg = config.profiler;
  prof_cfg.max_clos = static_cast<uint32_t>(num_tenants);
  simcache::ShadowTagProfiler profiler(machine->config().hierarchy.llc,
                                       prof_cfg);
  if (measured) machine->hierarchy().AttachShadowProfiler(&profiler);

  // Arrival trace: per-tenant generators with derived seeds, merged in time
  // order. A pure function of (config), independent of execution.
  std::vector<std::vector<uint64_t>> per_tenant(num_tenants);
  for (size_t t = 0; t < num_tenants; ++t) {
    per_tenant[t] = GenerateArrivalCycles(
        config.tenants[t].arrival, config.horizon_cycles,
        SplitMix64(config.seed ^ (0xC2B2AE3D27D4EB4FULL * (t + 1))));
  }

  LatencyRecorder recorder(num_tenants, num_classes);
  ServingSource source(machine, &scheduler, config,
                       MergeArrivals(per_tenant), &recorder,
                       std::move(tenant_private_vbase), shared_vbase);

  const std::unique_ptr<sim::Executor> executor = sim::MakeExecutor(machine);
  for (uint32_t core : config.cores) executor->Attach(core, &source);

  ServingRunReport report;
  report.policy = ServePolicyName(policy);
  report.horizon_cycles = config.horizon_cycles;

  if (measured) {
    policy::ClusterConfig cluster_cfg;
    cluster_cfg.max_clusters = config.max_clusters;
    cluster_cfg.grouping = policy == ServePolicyKind::kLookahead
                               ? policy::ClusterGrouping::kRoundRobin
                               : policy::ClusterGrouping::kMrcSimilarity;
    // Open system: only ~|cores| of the tenants run at once, so cluster
    // partitions are shared by a cluster's *active* members, not all of
    // them.
    cluster_cfg.active_fraction = std::min(
        1.0, static_cast<double>(config.cores.size()) / num_tenants);
    policy::ClusteredWayAllocator allocator(cluster_cfg);
    std::vector<uint64_t> current_masks;

    for (uint64_t t = config.interval_cycles;; t += config.interval_cycles) {
      const uint64_t stop = std::min(t, config.horizon_cycles);
      executor->RunUntil(stop);
      report.intervals += 1;

      std::vector<policy::StreamProfile> profiles(num_tenants);
      for (size_t i = 0; i < num_tenants; ++i) {
        const simcache::MissRateCurve curve =
            profiler.Curve(static_cast<uint32_t>(i));
        profiles[i].mrc_hits_at_ways = curve.hits_at_ways;
        profiles[i].mrc_accesses = curve.accesses;
      }
      allocator.Allocate(profiles, llc_ways);

      const std::vector<uint64_t>& cluster_masks = allocator.cluster_masks();
      for (size_t c = 0; c < cluster_masks.size(); ++c) {
        if (c < current_masks.size() && current_masks[c] == cluster_masks[c]) {
          continue;
        }
        CATDB_CHECK(
            fs.WriteSchemata(ClusterGroupName(static_cast<uint32_t>(c)),
                             cat::FormatSchemataLine(cluster_masks[c]))
                .ok());
        report.schemata_writes += 1;
      }
      current_masks = cluster_masks;

      const std::vector<uint32_t>& cluster_of = allocator.cluster_of_stream();
      for (size_t i = 0; i < num_tenants; ++i) {
        group_of_tenant[i] = ClusterGroupName(cluster_of[i]);
      }
      report.num_clusters = static_cast<uint32_t>(allocator.num_clusters());
      report.cluster_of_tenant = cluster_of;
      report.cluster_masks = cluster_masks;

      profiler.Age();
      if (stop >= config.horizon_cycles) break;
    }
  } else {
    executor->RunUntil(config.horizon_cycles);
  }

  machine->hierarchy().AttachShadowProfiler(nullptr);

  report.arrivals = source.arrivals_total();
  report.admitted = source.admitted();
  report.completed = source.completed();
  report.rejected = recorder.rejected();
  report.in_flight_at_horizon = report.admitted - report.completed;
  report.max_queue_depth = source.max_queue_depth();
  report.group_moves = scheduler.group_moves();

  report.latency = recorder.OverallLatency();
  report.queue_wait = recorder.OverallQueueWait();
  for (size_t c = 0; c < num_classes; ++c) {
    report.class_names.push_back(config.classes[c].name);
    report.class_latency.push_back(
        recorder.ClassLatency(static_cast<uint32_t>(c)));
    report.class_completed.push_back(
        recorder.class_completed(static_cast<uint32_t>(c)));
    report.class_rejected.push_back(
        recorder.class_rejected(static_cast<uint32_t>(c)));
    report.class_histogram.push_back(
        recorder.ClassHistogram(static_cast<uint32_t>(c)));
  }
  for (size_t t = 0; t < num_tenants; ++t) {
    report.tenant_latency.push_back(
        recorder.TenantLatency(static_cast<uint32_t>(t)));
    report.tenant_rejected.push_back(
        recorder.tenant_rejected(static_cast<uint32_t>(t)));
  }
  report.llc_hit_ratio = machine->hierarchy().stats().llc_hit_ratio();
  return report;
}

}  // namespace catdb::serve
