#include "serve/arrival.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace catdb::serve {

namespace {

/// Exponential draw by inverse CDF, floored at one cycle so every gap
/// advances time (a zero gap could otherwise loop forever at tiny means).
/// NextDouble() is in [0, 1), so 1-u is in (0, 1] and the log is finite.
uint64_t ExponentialCycles(Rng& rng, uint64_t mean_cycles) {
  const double u = rng.NextDouble();
  const double gap = -static_cast<double>(mean_cycles) * std::log(1.0 - u);
  return std::max<uint64_t>(1, static_cast<uint64_t>(gap));
}

}  // namespace

std::vector<uint64_t> GenerateArrivalCycles(const ArrivalConfig& config,
                                            uint64_t horizon_cycles,
                                            uint64_t seed) {
  CATDB_CHECK(config.mean_interarrival_cycles >= 1);
  std::vector<uint64_t> arrivals;
  Rng rng(seed);

  if (config.kind == ArrivalKind::kPoisson) {
    uint64_t t = ExponentialCycles(rng, config.mean_interarrival_cycles);
    while (t < horizon_cycles) {
      arrivals.push_back(t);
      t += ExponentialCycles(rng, config.mean_interarrival_cycles);
    }
    return arrivals;
  }

  CATDB_CHECK(config.mean_on_cycles >= 1 && config.mean_off_cycles >= 1);
  // ON-OFF: walk alternating periods; arrivals accumulate only inside ON
  // windows. The first period is ON, so every tenant is active from cycle 0
  // (staggered phases come from the per-tenant seeds drawing different
  // period lengths).
  uint64_t period_start = 0;
  bool on = true;
  while (period_start < horizon_cycles) {
    const uint64_t period = ExponentialCycles(
        rng, on ? config.mean_on_cycles : config.mean_off_cycles);
    const uint64_t period_end =
        std::min(horizon_cycles, period_start + period);
    if (on) {
      uint64_t t = period_start +
                   ExponentialCycles(rng, config.mean_interarrival_cycles);
      while (t < period_end) {
        arrivals.push_back(t);
        t += ExponentialCycles(rng, config.mean_interarrival_cycles);
      }
    }
    period_start = period_start + period;
    on = !on;
  }
  return arrivals;
}

std::vector<Arrival> MergeArrivals(
    const std::vector<std::vector<uint64_t>>& per_tenant) {
  std::vector<Arrival> merged;
  size_t total = 0;
  for (const auto& t : per_tenant) total += t.size();
  merged.reserve(total);
  for (uint32_t tenant = 0; tenant < per_tenant.size(); ++tenant) {
    for (uint64_t cycle : per_tenant[tenant]) {
      merged.push_back(Arrival{cycle, tenant});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Arrival& a, const Arrival& b) {
                     if (a.cycle != b.cycle) return a.cycle < b.cycle;
                     return a.tenant < b.tenant;
                   });
  return merged;
}

}  // namespace catdb::serve
