#ifndef CATDB_SERVE_REQUEST_H_
#define CATDB_SERVE_REQUEST_H_

#include <cstdint>
#include <string>

#include "engine/cache_usage.h"
#include "engine/job.h"
#include "sim/machine.h"

namespace catdb::serve {

/// A query class: the work shape one request of this class performs. Classes
/// model the paper's operator taxonomy at request granularity — a
/// cache-sensitive point/aggregation query re-reads a per-tenant working set,
/// a polluting scan streams once through a large shared region.
struct RequestClass {
  std::string name;
  engine::CacheUsage cuid = engine::CacheUsage::kSensitive;
  /// Lines of the tenant's private working set read per pass (the re-used,
  /// cacheable part). The tenant's private region is exactly this large.
  uint64_t private_lines = 0;
  /// Passes over the private working set (re-use factor; > 1 makes the
  /// class benefit from cache residency).
  uint32_t passes = 1;
  /// Lines streamed once from the shared region (no re-use: pollution).
  uint64_t stream_lines = 0;
  /// Pure compute cycles charged per line touched.
  uint32_t compute_per_line = 2;
};

/// One in-flight query: a resumable job touching its tenant's private region
/// and/or the shared streaming region in bounded chunks, carrying the
/// serving-layer identity (tenant, class) and the per-request cycle stamps
/// (arrival / dispatch / finish) the latency recorder consumes.
class RequestJob : public engine::Job {
 public:
  /// `stream_offset_lines` decorrelates concurrent scans: each request
  /// starts its pass through the shared region at its own offset.
  RequestJob(const RequestClass& klass, uint32_t tenant, uint32_t class_id,
             uint64_t private_vbase, uint64_t shared_vbase,
             uint64_t shared_region_lines, uint64_t stream_offset_lines);

  bool Step(sim::ExecContext& ctx) override;

  uint32_t tenant() const { return tenant_; }
  uint32_t class_id() const { return class_id_; }

  uint64_t arrival_cycle() const { return arrival_cycle_; }
  uint64_t dispatch_cycle() const { return dispatch_cycle_; }
  uint64_t finish_cycle() const { return finish_cycle_; }
  void set_arrival_cycle(uint64_t c) { arrival_cycle_ = c; }
  void set_dispatch_cycle(uint64_t c) { dispatch_cycle_ = c; }
  void set_finish_cycle(uint64_t c) { finish_cycle_ = c; }

 private:
  const RequestClass& klass_;
  uint32_t tenant_;
  uint32_t class_id_;
  uint64_t private_vbase_;
  uint64_t shared_vbase_;
  uint64_t shared_region_lines_;
  uint64_t stream_offset_lines_;
  /// Progress: lines already touched, over the whole request
  /// (passes * private_lines first, then stream_lines).
  uint64_t done_lines_ = 0;
  uint64_t arrival_cycle_ = 0;
  uint64_t dispatch_cycle_ = 0;
  uint64_t finish_cycle_ = 0;
};

}  // namespace catdb::serve

#endif  // CATDB_SERVE_REQUEST_H_
