#include "serve/request.h"

#include <algorithm>

#include "common/check.h"
#include "simcache/cache_geometry.h"

namespace catdb::serve {

namespace {
/// Lines per Step chunk: small enough that the discrete-event interleaving
/// across cores stays fine-grained (matches the operators' chunking).
constexpr uint64_t kChunkLines = 256;
}  // namespace

RequestJob::RequestJob(const RequestClass& klass, uint32_t tenant,
                       uint32_t class_id, uint64_t private_vbase,
                       uint64_t shared_vbase, uint64_t shared_region_lines,
                       uint64_t stream_offset_lines)
    : engine::Job(klass.name, klass.cuid),
      klass_(klass),
      tenant_(tenant),
      class_id_(class_id),
      private_vbase_(private_vbase),
      shared_vbase_(shared_vbase),
      shared_region_lines_(shared_region_lines),
      stream_offset_lines_(stream_offset_lines) {
  CATDB_CHECK(klass_.private_lines == 0 || private_vbase_ != 0);
  CATDB_CHECK(klass_.stream_lines == 0 || shared_region_lines_ > 0);
}

bool RequestJob::Step(sim::ExecContext& ctx) {
  const uint64_t private_total = klass_.private_lines * klass_.passes;
  const uint64_t total = private_total + klass_.stream_lines;
  uint64_t budget = std::min(kChunkLines, total - done_lines_);
  uint64_t chunk_lines = 0;

  while (budget > 0 && done_lines_ < private_total) {
    // Cyclic walk over the private working set; runs break at the region's
    // wrap-around boundary.
    const uint64_t pos = done_lines_ % klass_.private_lines;
    const uint64_t run = std::min(budget, klass_.private_lines - pos);
    ctx.ReadRun(private_vbase_ + pos * simcache::kLineSize, run);
    done_lines_ += run;
    chunk_lines += run;
    budget -= run;
  }
  while (budget > 0 && done_lines_ < total) {
    // One streaming pass through the shared region, starting at the
    // request's own offset (modulo the region).
    const uint64_t streamed = done_lines_ - private_total;
    const uint64_t pos =
        (stream_offset_lines_ + streamed) % shared_region_lines_;
    const uint64_t run = std::min(budget, shared_region_lines_ - pos);
    ctx.ReadRun(shared_vbase_ + pos * simcache::kLineSize, run);
    done_lines_ += run;
    chunk_lines += run;
    budget -= run;
  }

  // Per-chunk operator state: hot scratch touches, compute, instructions.
  TouchScratch(ctx, 4);
  ctx.Compute(chunk_lines * klass_.compute_per_line);
  ctx.Instructions(chunk_lines * 4 + 16);
  AddWork(ctx, chunk_lines);
  return done_lines_ < total;
}

}  // namespace catdb::serve
