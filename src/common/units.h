#ifndef CATDB_COMMON_UNITS_H_
#define CATDB_COMMON_UNITS_H_

#include <cstdint>

namespace catdb {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

/// Nominal simulated core frequency; used only to convert cycle counts into
/// human-readable (simulated) seconds in reports.
inline constexpr double kCyclesPerSecond = 2.2e9;

inline constexpr double CyclesToSeconds(uint64_t cycles) {
  return static_cast<double>(cycles) / kCyclesPerSecond;
}

}  // namespace catdb

#endif  // CATDB_COMMON_UNITS_H_
