#ifndef CATDB_COMMON_STATUS_H_
#define CATDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace catdb {

/// Error codes for recoverable failures. The project uses Status-based error
/// handling instead of exceptions (matching the Google/Arrow/RocksDB idiom
/// this codebase follows).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
};

/// A lightweight status object: either OK or an error code plus message.
///
/// Functions that can fail in ways the caller is expected to handle return a
/// `Status` (or `Result<T>`). Programming errors (broken invariants) use
/// `CATDB_CHECK` instead and abort.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: mask must be nonzero".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function.
#define CATDB_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::catdb::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// A value-or-error holder, analogous to arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return value;` / `return Status::InvalidArgument(...)`).
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Checked in debug builds via the caller's discipline;
  /// accessing the value of an error Result is a programming error.
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  T value_{};
  Status status_;
};

}  // namespace catdb

#endif  // CATDB_COMMON_STATUS_H_
