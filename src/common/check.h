#ifndef CATDB_COMMON_CHECK_H_
#define CATDB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace catdb::internal {

[[noreturn]] inline void CheckFailed(const char* condition, const char* file,
                                     int line) {
  std::fprintf(stderr, "CATDB_CHECK failed: %s at %s:%d\n", condition, file,
               line);
  std::abort();
}

}  // namespace catdb::internal

/// Aborts the process when an internal invariant is violated. Used for
/// programming errors only; recoverable conditions return `Status`.
#define CATDB_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::catdb::internal::CheckFailed(#cond, __FILE__, __LINE__);       \
    }                                                                  \
  } while (false)

/// Like CATDB_CHECK but compiled out in NDEBUG builds; use on hot paths.
#ifdef NDEBUG
#define CATDB_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define CATDB_DCHECK(cond) CATDB_CHECK(cond)
#endif

#endif  // CATDB_COMMON_CHECK_H_
