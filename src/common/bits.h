#ifndef CATDB_COMMON_BITS_H_
#define CATDB_COMMON_BITS_H_

#include <cstdint>

#include "common/check.h"

namespace catdb {

/// Returns true iff x is a power of two (and nonzero).
inline constexpr bool IsPowerOfTwo(uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Returns ceil(log2(x)) for x >= 1; BitsFor(1) == 1 so that every value can
/// be encoded with at least one bit (matches dictionary-code width needs).
inline constexpr uint32_t BitsFor(uint64_t x) {
  CATDB_DCHECK(x >= 1);
  uint32_t bits = 1;
  uint64_t limit = 2;
  while (limit < x) {
    limit <<= 1;
    ++bits;
  }
  return bits;
}

/// Returns the smallest power of two >= x. Requires x >= 1.
inline constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  CATDB_DCHECK(x >= 1);
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Returns log2 of a power of two.
inline constexpr uint32_t Log2(uint64_t x) {
  CATDB_DCHECK(IsPowerOfTwo(x));
  uint32_t n = 0;
  while ((x >>= 1) != 0) ++n;
  return n;
}

/// Returns the number of set bits.
inline constexpr uint32_t PopCount(uint64_t x) {
  return static_cast<uint32_t>(__builtin_popcountll(x));
}

/// Capacity bitmask with the lowest `ways` bits set. Requires
/// 1 <= ways <= 64: a zero-way mask is invalid under Intel CAT (schemata
/// masks must be non-empty and contiguous), and `1 << 64` is undefined
/// behaviour. Every CAT/way mask in the tree must come from here rather
/// than hand-rolled shifts.
inline constexpr uint64_t MaskForWays(uint32_t ways) {
  CATDB_DCHECK(ways >= 1 && ways <= 64);
  return ways >= 64 ? ~uint64_t{0} : (uint64_t{1} << ways) - 1;
}

/// Returns true iff the set bits of `mask` form one contiguous run.
/// Intel CAT requires capacity bitmasks to be contiguous.
inline constexpr bool IsContiguousMask(uint64_t mask) {
  if (mask == 0) return false;
  while ((mask & 1) == 0) mask >>= 1;
  return (mask & (mask + 1)) == 0;
}

}  // namespace catdb

#endif  // CATDB_COMMON_BITS_H_
