#ifndef CATDB_COMMON_RNG_H_
#define CATDB_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"

namespace catdb {

/// Deterministic xorshift128+ random number generator.
///
/// The whole project (data generation, workload parameter draws) uses this
/// RNG so that every experiment is bit-reproducible across platforms and
/// standard-library versions (std::mt19937 distributions are not portable).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xorshift authors.
    uint64_t z = seed;
    for (int i = 0; i < 2; ++i) {
      z += 0x9E3779B97F4A7C15ULL;
      uint64_t s = z;
      s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9ULL;
      s = (s ^ (s >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = s ^ (s >> 31);
    }
    if (state_[0] == 0 && state_[1] == 0) state_[0] = 1;
  }

  /// Returns the next 64 random bits.
  uint64_t Next() {
    uint64_t s1 = state_[0];
    const uint64_t s0 = state_[1];
    const uint64_t result = s0 + s1;
    state_[0] = s0;
    s1 ^= s1 << 23;
    state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return result;
  }

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) {
    CATDB_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection-free mapping (slight bias is
    // irrelevant at our bounds, and it is fast and portable).
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    CATDB_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_[2];
};

}  // namespace catdb

#endif  // CATDB_COMMON_RNG_H_
