#include "sim/epoch_executor.h"

#include <utility>

#include "common/check.h"
#include "simcache/host_profile.h"

namespace catdb::sim {

namespace {
/// Steps a lane records per lock acquisition (bounded by queue space): large
/// enough to amortise the mutex, small enough that the applier sees fresh
/// chunks quickly after a phase barrier opens.
constexpr uint32_t kRecordBatch = 16;
}  // namespace

EpochExecutor::EpochExecutor(Machine* machine, uint32_t sim_threads)
    : Executor(machine),
      channels_(machine->num_cores()),
      pool_((sim_threads == 0 ? machine->config().sim_threads
                              : sim_threads) -
            1) {
  const uint32_t threads =
      sim_threads == 0 ? machine->config().sim_threads : sim_threads;
  CATDB_CHECK(threads >= 2);
  const uint32_t n_lanes = threads - 1;
  CATDB_CHECK(n_lanes <= machine->num_cores());
  lanes_.reserve(n_lanes);
  for (uint32_t l = 0; l < n_lanes; ++l) {
    lanes_.push_back(std::make_unique<Lane>());
    for (uint32_t c = l; c < machine->num_cores(); c += n_lanes) {
      lanes_[l]->cores.push_back(c);
    }
  }
  for (uint32_t l = 0; l < n_lanes; ++l) {
    pool_.Submit([this, l] { LaneLoop(l); });
  }
}

EpochExecutor::~EpochExecutor() {
  for (auto& lane : lanes_) {
    {
      std::lock_guard<std::mutex> lk(lane->mu);
      lane->stop = true;
    }
    lane->work_cv.notify_all();
  }
  pool_.Wait();
  // Lanes are joined: fold their record-time counters into the host
  // profile (if one is attached) single-threadedly. Profiled selfperf legs
  // read the breakdown after the executor is destroyed.
  if (simcache::HostCycleBreakdown* hp =
          machine()->hierarchy().host_profile()) {
    for (const auto& lane : lanes_) hp->staging += lane->staging_cycles;
  }
}

void EpochExecutor::ResumeLanes() {
  for (auto& lane : lanes_) {
    {
      std::lock_guard<std::mutex> lk(lane->mu);
      lane->pause = false;
    }
    lane->work_cv.notify_all();
  }
}

void EpochExecutor::ParkLanes() {
  for (auto& lane : lanes_) {
    std::unique_lock<std::mutex> lk(lane->mu);
    lane->pause = true;
    // A lane mid-batch finishes recording, publishes its chunks, re-checks
    // `pause` and parks; a lane already waiting is parked by definition.
    lane->data_cv.wait(lk, [&lane] { return lane->parked; });
  }
}

void EpochExecutor::RunUntil(uint64_t horizon) {
  ResumeLanes();
  Executor::RunUntil(horizon);
  ParkLanes();
}

void EpochExecutor::OnTaskAssigned(uint32_t core, Task* task) {
  Lane& lane = LaneOf(core);
  {
    std::lock_guard<std::mutex> lk(lane.mu);
    CoreChannel& ch = channels_[core];
    CATDB_DCHECK(ch.task == nullptr && ch.chunks.empty());
    ch.task = task;
  }
  lane.work_cv.notify_all();
}

bool EpochExecutor::StepTask(Task* task, uint32_t core) {
  Lane& lane = LaneOf(core);
  StagedChunk chunk;
  {
    std::unique_lock<std::mutex> lk(lane.mu);
    CoreChannel& ch = channels_[core];
    if (ch.chunks.empty()) {
      // The epoch barrier from the applier's side: wait for the lane to
      // stage this core's next chunk. Attributed to the host profile so an
      // under-provisioned lane count shows up in the breakdown.
      simcache::HostCycleBreakdown* const hp =
          machine()->hierarchy().host_profile();
      const uint64_t t0 = hp != nullptr ? simcache::HostTimerNow() : 0;
      lane.data_cv.wait(lk, [&ch] { return !ch.chunks.empty(); });
      if (hp != nullptr) hp->barrier_wait += simcache::HostTimerNow() - t0;
    }
    chunk = std::move(ch.chunks.front());
    ch.chunks.pop_front();
  }
  // Freed queue space (or, for the last chunk, a channel going idle): let
  // the lane top the queue back up while we replay.
  lane.work_cv.notify_all();
  ApplyStagedChunk(machine(), core, chunk);
  task->CreditWork(chunk.work_delta);
  return !chunk.last;
}

bool EpochExecutor::PickCoreLocked(Lane& lane, uint32_t* core_out) {
  for (size_t i = 0; i < lane.cores.size(); ++i) {
    const size_t idx = (lane.next_core + i) % lane.cores.size();
    const uint32_t core = lane.cores[idx];
    const CoreChannel& ch = channels_[core];
    if (ch.task != nullptr && ch.chunks.size() < kEpochChunkDepth) {
      lane.next_core = (idx + 1) % lane.cores.size();
      *core_out = core;
      return true;
    }
  }
  return false;
}

void EpochExecutor::LaneLoop(uint32_t lane_id) {
  Lane& lane = *lanes_[lane_id];
  std::vector<StagedChunk> batch;
  for (;;) {
    uint32_t core = 0;
    Task* task = nullptr;
    uint32_t budget = 0;
    {
      std::unique_lock<std::mutex> lk(lane.mu);
      for (;;) {
        if (lane.stop) return;
        if (!lane.pause && PickCoreLocked(lane, &core)) break;
        if (!lane.parked) {
          lane.parked = true;
          lane.data_cv.notify_all();
        }
        lane.work_cv.wait(lk);
      }
      lane.parked = false;
      CoreChannel& ch = channels_[core];
      task = ch.task;
      const size_t space = kEpochChunkDepth - ch.chunks.size();
      budget = space < kRecordBatch ? static_cast<uint32_t>(space)
                                    : kRecordBatch;
    }
    // Record outside the lock: Steps in record mode touch only the task's
    // own state (plus commutative atomics), never the shared machine.
    simcache::HostCycleBreakdown* const hp =
        machine()->hierarchy().host_profile();
    const uint64_t t0 = hp != nullptr ? simcache::HostTimerNow() : 0;
    batch.clear();
    bool last = false;
    for (uint32_t i = 0; i < budget && !last; ++i) {
      StagedChunk chunk;
      ExecContext ctx(machine(), core, &chunk);
      last = !task->Step(ctx);
      chunk.work_delta = ctx.TakeWorkDelta();
      chunk.last = last;
      batch.push_back(std::move(chunk));
    }
    if (hp != nullptr) lane.staging_cycles += simcache::HostTimerNow() - t0;
    {
      std::lock_guard<std::mutex> lk(lane.mu);
      CoreChannel& ch = channels_[core];
      for (StagedChunk& c : batch) ch.chunks.push_back(std::move(c));
      // The tail chunk staged: drop the task so the lane never re-Steps a
      // finished task. The applier re-arms the channel via OnTaskAssigned
      // only after it replayed the tail and the source handed out new work.
      if (last) ch.task = nullptr;
    }
    lane.data_cv.notify_all();
  }
}

std::unique_ptr<Executor> MakeExecutor(Machine* machine) {
  CATDB_CHECK(machine != nullptr);
  if (machine->config().sim_threads > 1) {
    return std::make_unique<EpochExecutor>(machine);
  }
  return std::make_unique<Executor>(machine);
}

}  // namespace catdb::sim
