#include "sim/executor.h"

#include "common/check.h"

namespace catdb::sim {

Executor::Executor(Machine* machine) : machine_(machine) {
  CATDB_CHECK(machine_ != nullptr);
  cores_.resize(machine_->num_cores());
}

void Executor::Attach(uint32_t core, TaskSource* source) {
  CATDB_CHECK(core < cores_.size());
  cores_[core].source = source;
}

void Executor::PollIdleCores() {
  for (uint32_t c = 0; c < cores_.size(); ++c) {
    CoreState& cs = cores_[c];
    if (cs.current != nullptr || cs.source == nullptr) continue;
    Task* task = cs.source->NextTask(c);
    if (task == nullptr) continue;
    cs.current = task;
    cs.dispatched = false;
    OnTaskAssigned(c, task);
    // Enqueue at the cycle the task could start; the clock itself is not
    // advanced (and the dispatch hook not fired) until the task is actually
    // scheduled inside the horizon.
    const uint64_t clock = machine_->clock(c);
    const uint64_t start = clock > task->ready_time() ? clock
                                                      : task->ready_time();
    ready_.emplace(start, c);
  }
}

void Executor::RunUntil(uint64_t horizon) {
  // Invariant: every core with a current task has exactly one heap entry,
  // keyed on the cycle of its next Step (including pending dispatch
  // charges once dispatched).
  PollIdleCores();
  for (;;) {
    if (ready_.empty()) return;  // everything idle
    const auto [key, core] = ready_.top();
    if (key >= horizon) return;  // nothing runnable before the horizon
    ready_.pop();

    CoreState& cs = cores_[core];
    CATDB_DCHECK(cs.current != nullptr);
    if (!cs.dispatched) {
      machine_->AdvanceClockTo(core, cs.current->ready_time());
      cs.source->TaskDispatched(cs.current, core);
      cs.dispatched = true;
      if (obs::EventTrace* trace = machine_->trace()) {
        obs::TraceEvent ev;
        // Post-dispatch clock: re-association charges are part of the span.
        ev.cycle = machine_->clock(core);
        ev.kind = obs::EventKind::kTaskDispatch;
        ev.core = core;
        ev.label = std::string(cs.current->label());
        trace->Record(std::move(ev));
      }
      const uint64_t clock = machine_->clock(core);
      if (clock != key) {
        // Dispatch charges (CLOS re-association) moved the clock; re-sort.
        ready_.emplace(clock, core);
        continue;
      }
    }

    // Step the core until it stops being the earliest. Re-checking against
    // the heap top instead of re-pushing every step keeps the common case —
    // the same core staying ahead — free of heap traffic.
    for (;;) {
      const bool more = StepTask(cs.current, core);
      const uint64_t clock = machine_->clock(core);
      if (!more) {
        Task* done = cs.current;
        cs.current = nullptr;
        cs.dispatched = false;
        if (obs::EventTrace* trace = machine_->trace()) {
          obs::TraceEvent ev;
          ev.cycle = clock;
          ev.kind = obs::EventKind::kTaskFinish;
          ev.core = core;
          ev.label = std::string(done->label());
          trace->Record(std::move(ev));
        }
        cs.source->TaskFinished(done, core, clock);
        // A finish is the only event that can unblock other sources (phase
        // barriers open, streams advance); hand out the released work now.
        PollIdleCores();
        break;
      }
      if (clock >= horizon) {
        ready_.emplace(clock, core);
        break;
      }
      if (!ready_.empty() && ReadyEntry(clock, core) > ready_.top()) {
        ready_.emplace(clock, core);
        break;
      }
    }
  }
}

bool Executor::StepTask(Task* task, uint32_t core) {
  ExecContext ctx(machine_, core);
  const bool more = task->Step(ctx);
  task->CreditWork(ctx.TakeWorkDelta());
  return more;
}

uint64_t Executor::RunUntilIdle() {
  RunUntil(~uint64_t{0});
  return machine_->MaxClock();
}

}  // namespace catdb::sim
