#include "sim/executor.h"

#include "common/check.h"

namespace catdb::sim {

Executor::Executor(Machine* machine) : machine_(machine) {
  CATDB_CHECK(machine_ != nullptr);
  cores_.resize(machine_->num_cores());
}

void Executor::Attach(uint32_t core, TaskSource* source) {
  CATDB_CHECK(core < cores_.size());
  cores_[core].source = source;
}

bool Executor::Replenish(uint32_t core) {
  CoreState& cs = cores_[core];
  if (cs.current != nullptr) return true;
  if (cs.source == nullptr) return false;
  Task* task = cs.source->NextTask(core);
  if (task == nullptr) return false;
  machine_->AdvanceClockTo(core, task->ready_time());
  cs.source->TaskDispatched(task, core);
  cs.current = task;
  return true;
}

void Executor::RunUntil(uint64_t horizon) {
  for (;;) {
    // Pick the runnable core with the smallest clock (ties: lowest id).
    int best = -1;
    uint64_t best_clock = horizon;
    for (uint32_t c = 0; c < cores_.size(); ++c) {
      if (!Replenish(c)) continue;
      const uint64_t clock = machine_->clock(c);
      if (clock < best_clock) {
        best_clock = clock;
        best = static_cast<int>(c);
      }
    }
    if (best < 0) return;  // all idle or past the horizon

    const uint32_t core = static_cast<uint32_t>(best);
    CoreState& cs = cores_[core];
    ExecContext ctx(machine_, core);
    const bool more = cs.current->Step(ctx);
    if (!more) {
      Task* done = cs.current;
      cs.current = nullptr;
      cs.source->TaskFinished(done, core, machine_->clock(core));
    }
  }
}

uint64_t Executor::RunUntilIdle() {
  RunUntil(~uint64_t{0});
  return machine_->MaxClock();
}

}  // namespace catdb::sim
