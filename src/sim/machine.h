#ifndef CATDB_SIM_MACHINE_H_
#define CATDB_SIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cat/cat_controller.h"
#include "cat/resctrl.h"
#include "common/check.h"
#include "common/status.h"
#include "obs/trace.h"
#include "simcache/hierarchy.h"

namespace catdb::sim {

/// Configuration of the simulated machine.
struct MachineConfig {
  simcache::HierarchyConfig hierarchy;
  /// Cycle cost charged to a core when the kernel must re-associate it with
  /// a different CLOS on a context switch (an MSR write plus syscall path;
  /// a few microseconds at 2.2 GHz). Section V-C measures this overhead at
  /// well under 100 us per query; the scheduler skips it when the CLOS is
  /// unchanged.
  uint64_t reassociation_cycles = 7000;
  /// Cycle cost of the in-kernel IA32_PQR_ASSOC update when a context switch
  /// lands a thread with a different CLOS on a core (cheap: one MSR write).
  uint64_t pqr_write_cycles = 120;
  /// If true (default), ExecContext::ReadRun/WriteRun use the run-granular
  /// MemoryHierarchy::AccessRun fast path; if false, runs decompose into the
  /// scalar per-line Access chain. Both produce bit-identical simulated
  /// cycles, statistics and reports (pinned by tests/batched_access_test.cc
  /// and the determinism goldens); the flag exists so the self-benchmark can
  /// measure the batching speedup and tests can pin the equivalence.
  bool batched_runs = true;
  /// Total host threads simulating this machine. 1 (default) selects the
  /// serial executor; N >= 2 selects the epoch executor: N-1 recording lanes
  /// run task Steps ahead into per-core staging queues while one applier
  /// thread replays the staged operations against the shared hierarchy in
  /// canonical (cycle, core) order, so reports and traces stay bit-identical
  /// to sim_threads=1 (pinned by tests/parallel_sim_test.cc).
  uint32_t sim_threads = 1;
};

/// One simulated-machine operation recorded by a parallel recording lane
/// while it runs a task's Step ahead of the canonical schedule. Replayed on
/// the applier thread in canonical (cycle, core) order, a staged op performs
/// exactly the machine call the serial executor would have made, so every
/// cache, DRAM-queue, monitor and trace side effect lands identically.
struct StagedOp {
  enum class Kind : uint8_t { kAccess, kAccessRun, kCompute, kInstructions };
  Kind kind = Kind::kAccess;
  bool is_write = false;
  uint64_t addr = 0;  // virtual address (kAccess/kAccessRun)
  uint64_t n = 0;     // lines (kAccessRun), cycles (kCompute), count (kInstr)
};

/// Everything one Step() call charged to the machine, in call order, plus
/// the work units it completed and whether it was the task's last Step.
struct StagedChunk {
  std::vector<StagedOp> ops;
  uint64_t work_delta = 0;
  bool last = false;
};

/// The simulated single-socket machine: virtual cores with cycle clocks, the
/// memory hierarchy, and the CAT/resctrl control plane.
///
/// Instrumented data structures allocate *virtual* address ranges from the
/// machine (deterministic bump allocator) and charge their memory accesses
/// against those addresses, so simulations are bit-reproducible regardless of
/// host heap layout.
class Machine {
 public:
  /// Validates a MachineConfig before construction: cache geometries must be
  /// valid and the core count must fit the hierarchy's presence-mask width
  /// (one bit per core; a wider machine would shift presence bits out of
  /// range — UB — during inclusive back-invalidation bookkeeping). Callers
  /// that accept external configuration should consult this and surface the
  /// Status; the constructor CHECKs it as a backstop.
  static Status ValidateConfig(const MachineConfig& config);

  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  uint32_t num_cores() const { return config_.hierarchy.num_cores; }
  const MachineConfig& config() const { return config_; }

  /// Allocates `bytes` of simulated virtual address space, aligned to a
  /// cache line, and eagerly backs it with simulated *physical* pages drawn
  /// round-robin from all page colors. Purely a namespace operation — no
  /// host memory is reserved.
  uint64_t AllocVirtual(uint64_t bytes);

  /// Like AllocVirtual, but backs the range only with physical pages of the
  /// colors set in `color_mask` (bit c = color c allowed; see
  /// num_page_colors()). This is OS page coloring — the software
  /// cache-partitioning alternative the paper contrasts CAT against
  /// (Section V-A / related work). The range is page-aligned so the
  /// restriction is exact. `color_mask` must select at least one valid
  /// color.
  uint64_t AllocVirtualColored(uint64_t bytes, uint64_t color_mask);

  /// Number of distinct page colors of the LLC: with identity set indexing
  /// a 4 KiB page maps to a fixed group of 64 consecutive sets, so an LLC
  /// with S sets has S/64 colors (1 if S <= 64).
  uint32_t num_page_colors() const { return num_colors_; }

  /// The page color a given *virtual* address is currently backed by.
  uint32_t PageColorOf(uint64_t vaddr) const;

  /// Sets a default color mask applied by AllocVirtual until cleared
  /// (0 = no restriction). Lets existing AttachSim code allocate its
  /// structures under a page-coloring regime without API changes; prefer
  /// the ScopedPageColors RAII guard.
  void SetAllocColorMask(uint64_t color_mask) {
    alloc_color_mask_ = color_mask;
  }
  uint64_t alloc_color_mask() const { return alloc_color_mask_; }

  /// Translates a simulated virtual address to its physical address.
  uint64_t Translate(uint64_t vaddr) const;

  /// Simulates a memory access by `core` to virtual address `addr`, charging
  /// the access latency to the core's clock.
  void Access(uint32_t core, uint64_t addr, bool is_write);

  /// Simulates `n_lines` accesses to the consecutive cache lines starting at
  /// the line holding virtual address `addr`, equivalent to (and
  /// bit-identical with) that many scalar Access calls in ascending order.
  /// The core's CLOS and CAT mask are resolved once, the run is segmented at
  /// 4 KiB page boundaries (physical lines are contiguous within a page, so
  /// translation happens once per segment), and each segment flows through
  /// MemoryHierarchy::AccessRun. Falls back to the scalar loop when
  /// `batched_runs` is off or the hierarchy runs the reference
  /// implementation.
  void AccessRun(uint32_t core, uint64_t addr, uint64_t n_lines,
                 bool is_write);

  /// Charges `n` pure compute cycles to the core's clock.
  void Compute(uint32_t core, uint64_t n) { clocks_[core] += n; }

  /// Counts retired instructions (for the misses-per-instruction metric).
  void CountInstructions(uint64_t n) { hierarchy_.CountInstructions(n); }

  uint64_t clock(uint32_t core) const { return clocks_[core]; }
  void set_clock(uint32_t core, uint64_t value) { clocks_[core] = value; }

  /// Advances the core's clock to at least `t` (barrier synchronisation).
  void AdvanceClockTo(uint32_t core, uint64_t t) {
    if (clocks_[core] < t) clocks_[core] = t;
  }

  /// Maximum clock over all cores.
  uint64_t MaxClock() const;

  simcache::MemoryHierarchy& hierarchy() { return hierarchy_; }
  const simcache::MemoryHierarchy& hierarchy() const { return hierarchy_; }
  cat::CatController& cat() { return cat_; }
  cat::ResctrlFs& resctrl() { return resctrl_; }

  /// Turns on event tracing with a ring buffer of `capacity` events and
  /// binds it to the control plane. Recording is free of simulation side
  /// effects: a traced run is cycle-identical to an untraced one (pinned by
  /// the determinism tests). Calling again replaces the buffer.
  void EnableTracing(size_t capacity = 1 << 16);
  void DisableTracing();

  /// The bound event trace, or nullptr when tracing is off.
  obs::EventTrace* trace() { return trace_.get(); }

  /// Charges the CLOS re-association cost to a core (called by the job
  /// scheduler when a context switch actually required an MSR write).
  void ChargeReassociation(uint32_t core) {
    clocks_[core] += config_.reassociation_cycles;
  }

  /// Cache Monitoring Technology: current LLC occupancy of a resource
  /// group, in bytes (resctrl's mon_data/llc_occupancy).
  Result<uint64_t> LlcOccupancyBytes(const std::string& group) const;

  /// Memory Bandwidth Monitoring: cumulative DRAM bytes transferred on
  /// behalf of a resource group since the last statistics reset
  /// (resctrl's mon_data/mbm_total_bytes).
  Result<uint64_t> MbmTotalBytes(const std::string& group) const;

  /// Per-group LLC demand hit ratio over the current statistics window
  /// (a per-group PCM-style counter; used by the dynamic policy).
  Result<double> GroupLlcHitRatio(const std::string& group) const;

  /// Resets clocks, caches and statistics, but keeps CAT group setup and
  /// virtual allocations (datasets stay "in memory").
  void ResetForRun();

  /// Base virtual address of the per-core scratch region (16 lines). Models
  /// the job-worker thread's hot stack frames and operator metadata — the
  /// small re-used working set that suffers when a 1-way CAT mask lets
  /// streaming data thrash it (the paper's "0x1 degrades performance
  /// severely" observation, Section V-B).
  uint64_t CoreScratchVbase(uint32_t core) const {
    return core_scratch_[core];
  }
  static constexpr uint32_t kScratchLines = 16;

 private:
  // Per-core memo for the point-access fast path (fast mode only): the CLOS
  // and CAT mask snapshot (valid while the CAT generation is unchanged) and
  // the physical line base of the last-touched virtual page (valid forever:
  // page mappings are immutable once assigned). Re-validating is two
  // compares, so the hot exit of a point access needs neither the
  // out-of-line CoreClos/CoreMask pair nor a page-table walk.
  struct AccessContext {
    uint64_t vpage = ~uint64_t{0};
    uint64_t pline_base = 0;
    uint64_t cat_gen = ~uint64_t{0};
    uint64_t mask = 0;
    uint32_t clos = 0;
  };

  // The point-access chain behind Access and single-line AccessRun calls in
  // fast mode: memoized CLOS/mask/translation feeding the hierarchy's
  // inline AccessPoint. Bit-identical to the unmemoized scalar chain.
  void PointAccess(uint32_t core, uint64_t addr);

  // Assigns a fresh physical page of one of the colors in `color_mask`
  // (0 = any color, round-robin). Physical page numbers within each color
  // class are dealt in a pseudo-random (but deterministic) order so equally
  // spaced virtual streams do not phase-lock onto the same cache sets.
  uint64_t AssignPhysicalPage(uint64_t color_mask);
  void MapRange(uint64_t vaddr_begin, uint64_t vaddr_end,
                uint64_t color_mask);

  MachineConfig config_;
  simcache::MemoryHierarchy hierarchy_;
  cat::CatController cat_;
  cat::ResctrlFs resctrl_;
  std::unique_ptr<obs::EventTrace> trace_;
  std::vector<uint64_t> clocks_;
  std::vector<uint64_t> core_scratch_;
  std::vector<AccessContext> access_ctx_;
  uint64_t next_vaddr_;
  uint32_t num_colors_ = 1;
  // page_table_[vpage] = physical page number (+1; 0 = unmapped).
  std::vector<uint64_t> page_table_;
  std::vector<uint64_t> color_page_counter_;
  uint32_t color_rr_ = 0;
  uint64_t alloc_color_mask_ = 0;
};

/// RAII guard: all AllocVirtual calls within the scope draw physical pages
/// only from the colors in `color_mask` (OS page coloring).
class ScopedPageColors {
 public:
  ScopedPageColors(Machine* machine, uint64_t color_mask)
      : machine_(machine), saved_(machine->alloc_color_mask()) {
    machine_->SetAllocColorMask(color_mask);
  }
  ~ScopedPageColors() { machine_->SetAllocColorMask(saved_); }

  ScopedPageColors(const ScopedPageColors&) = delete;
  ScopedPageColors& operator=(const ScopedPageColors&) = delete;

 private:
  Machine* machine_;
  uint64_t saved_;
};

/// Handle passed to jobs while they execute on a core: all simulated memory
/// traffic and compute cost flows through this object.
///
/// Two modes share one type so task code never branches:
///  * apply mode (record == nullptr): every call charges the machine
///    immediately — the serial executor's path.
///  * record mode (record != nullptr): calls append StagedOps to the chunk
///    instead of touching the machine; a parallel recording lane runs the
///    Step ahead of the canonical schedule and the applier thread replays
///    the chunk later. Recorded Steps must be timing-independent: now() is
///    a CHECK failure in record mode, and machine() may only be used for
///    immutable metadata (scratch bases, geometry) — never clocks or stats.
class ExecContext {
 public:
  ExecContext(Machine* machine, uint32_t core, StagedChunk* record = nullptr)
      : machine_(machine), core_(core), record_(record) {}

  uint32_t core() const { return core_; }
  uint64_t now() const {
    // A task that reads the clock cannot be recorded ahead of the schedule;
    // such tasks are serial-only (sim_threads=1).
    CATDB_CHECK(record_ == nullptr);
    return machine_->clock(core_);
  }
  Machine& machine() { return *machine_; }

  /// Simulated read of the cache line holding virtual address `addr`.
  void Read(uint64_t addr) {
    if (record_ != nullptr) {
      record_->ops.push_back({StagedOp::Kind::kAccess, false, addr, 0});
      return;
    }
    machine_->Access(core_, addr, false);
  }

  /// Simulated write (timed like a read; write-allocate).
  void Write(uint64_t addr) {
    if (record_ != nullptr) {
      record_->ops.push_back({StagedOp::Kind::kAccess, true, addr, 0});
      return;
    }
    machine_->Access(core_, addr, true);
  }

  /// Simulated read of `n_lines` consecutive cache lines starting at the
  /// line holding `addr` — the batched form of a per-line Read loop, for
  /// streaming operators (column scans, join key walks, posting lists).
  void ReadRun(uint64_t addr, uint64_t n_lines) {
    if (record_ != nullptr) {
      record_->ops.push_back({StagedOp::Kind::kAccessRun, false, addr,
                              n_lines});
      return;
    }
    machine_->AccessRun(core_, addr, n_lines, false);
  }

  /// Simulated write of `n_lines` consecutive cache lines (timed like
  /// ReadRun; write-allocate).
  void WriteRun(uint64_t addr, uint64_t n_lines) {
    if (record_ != nullptr) {
      record_->ops.push_back({StagedOp::Kind::kAccessRun, true, addr,
                              n_lines});
      return;
    }
    machine_->AccessRun(core_, addr, n_lines, true);
  }

  /// Charges pure compute cycles.
  void Compute(uint64_t cycles) {
    if (record_ != nullptr) {
      record_->ops.push_back({StagedOp::Kind::kCompute, false, 0, cycles});
      return;
    }
    machine_->Compute(core_, cycles);
  }

  /// Counts retired instructions for the MPI metric.
  void Instructions(uint64_t n) {
    if (record_ != nullptr) {
      record_->ops.push_back({StagedOp::Kind::kInstructions, false, 0, n});
      return;
    }
    machine_->CountInstructions(n);
  }

  /// Credits `units` of completed work (rows) to the running task. The
  /// executor flushes the delta into the task after the Step returns — at
  /// replay time under the epoch executor — so fractional iteration
  /// accounting at a measurement horizon sees identical values at any
  /// sim-thread count.
  void AddWork(uint64_t units) { work_delta_ += units; }

  /// Returns and clears the accumulated work delta (executor-internal).
  uint64_t TakeWorkDelta() {
    const uint64_t d = work_delta_;
    work_delta_ = 0;
    return d;
  }

 private:
  Machine* machine_;
  uint32_t core_;
  StagedChunk* record_;
  uint64_t work_delta_ = 0;
};

/// Replays one staged chunk's operations against the machine, in recorded
/// order, on behalf of `core`. Called by the epoch executor's applier thread
/// at the chunk's canonical position in the schedule.
inline void ApplyStagedChunk(Machine* machine, uint32_t core,
                             const StagedChunk& chunk) {
  for (const StagedOp& op : chunk.ops) {
    switch (op.kind) {
      case StagedOp::Kind::kAccess:
        machine->Access(core, op.addr, op.is_write);
        break;
      case StagedOp::Kind::kAccessRun:
        machine->AccessRun(core, op.addr, op.n, op.is_write);
        break;
      case StagedOp::Kind::kCompute:
        machine->Compute(core, op.n);
        break;
      case StagedOp::Kind::kInstructions:
        machine->CountInstructions(op.n);
        break;
    }
  }
}

}  // namespace catdb::sim

#endif  // CATDB_SIM_MACHINE_H_
