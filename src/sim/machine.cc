#include "sim/machine.h"

#include <cstdio>

#include "common/bits.h"
#include "common/check.h"
#include "simcache/cache_geometry.h"

namespace catdb::sim {

namespace {

// Bijective scramble of page indices within a color class: odd multiplier
// modulo a power-of-two pool. 2^20 pages per color = 4 GiB per color class.
constexpr uint64_t kPagePoolBits = 20;
constexpr uint64_t kPagePoolMask = (uint64_t{1} << kPagePoolBits) - 1;
constexpr uint64_t kPageScramble = 0x9E375;  // odd

// Constructor backstop: runs ValidateConfig before any member that depends
// on the config (notably the hierarchy, whose presence masks assume the
// core count fits) is constructed.
const MachineConfig& CheckedConfig(const MachineConfig& config) {
  const Status st = Machine::ValidateConfig(config);
  if (!st.ok()) {
    std::fprintf(stderr, "invalid MachineConfig: %s\n", st.ToString().c_str());
  }
  CATDB_CHECK(st.ok());
  return config;
}

}  // namespace

Status Machine::ValidateConfig(const MachineConfig& config) {
  const simcache::HierarchyConfig& h = config.hierarchy;
  if (h.num_cores < 1) {
    return Status::InvalidArgument("num_cores must be at least 1");
  }
  if (h.num_cores > simcache::SetAssocCache::kMaxPresenceCores) {
    return Status::InvalidArgument(
        "num_cores (" + std::to_string(h.num_cores) +
        ") exceeds the presence-mask width (" +
        std::to_string(simcache::SetAssocCache::kMaxPresenceCores) +
        " cores): per-core presence bits would shift out of range");
  }
  if (!h.l1.Valid() || !h.l2.Valid() || !h.llc.Valid()) {
    return Status::InvalidArgument(
        "cache geometries must have power-of-two sets and 1..64 ways");
  }
  if (config.sim_threads < 1) {
    return Status::InvalidArgument(
        "sim_threads must be at least 1 (1 = serial executor)");
  }
  if (config.sim_threads > 1 && config.sim_threads - 1 > h.num_cores) {
    return Status::InvalidArgument(
        "sim_threads (" + std::to_string(config.sim_threads) +
        ") exceeds num_cores+1 (" + std::to_string(h.num_cores + 1) +
        "): more recording lanes than simulated cores cannot be used");
  }
  return Status::OK();
}

Machine::Machine(const MachineConfig& config)
    : config_(CheckedConfig(config)),
      hierarchy_(config.hierarchy),
      cat_(config.hierarchy.llc.num_ways, config.hierarchy.num_cores),
      resctrl_(&cat_),
      clocks_(config.hierarchy.num_cores, 0),
      next_vaddr_(1ull << 20) {
  const uint32_t llc_sets = config.hierarchy.llc.num_sets;
  num_colors_ = llc_sets > simcache::kPageLines
                    ? llc_sets / static_cast<uint32_t>(simcache::kPageLines)
                    : 1;
  color_page_counter_.assign(num_colors_, 0);
  access_ctx_.resize(config.hierarchy.num_cores);
  for (uint32_t c = 0; c < config.hierarchy.num_cores; ++c) {
    core_scratch_.push_back(
        AllocVirtual(kScratchLines * simcache::kLineSize));
  }
  // A resource group that reuses a CLOS must not inherit the cumulative
  // MBM/LLC counters of the previous owner (ResctrlFs cannot reach the
  // hierarchy itself — the machine bridges the layers).
  resctrl_.SetMonitorResetHook([this](cat::ClosId clos) {
    hierarchy_.ResetClosMonitorCounters(clos);
  });
}

void Machine::EnableTracing(size_t capacity) {
  trace_ = std::make_unique<obs::EventTrace>(capacity);
  resctrl_.BindTrace(trace_.get(), &clocks_);
}

void Machine::DisableTracing() {
  resctrl_.BindTrace(nullptr, nullptr);
  trace_.reset();
}

uint64_t Machine::AssignPhysicalPage(uint64_t color_mask) {
  uint32_t color;
  if (color_mask == 0) {
    color = color_rr_++ % num_colors_;
  } else {
    // Round-robin over the set bits of the mask.
    const uint64_t usable =
        color_mask & MaskForWays(num_colors_ < 64 ? num_colors_ : 64);
    CATDB_CHECK(usable != 0);
    uint32_t skip = color_rr_++ % PopCount(usable);
    color = 0;
    for (uint32_t bit = 0; bit < num_colors_; ++bit) {
      if ((usable >> bit & 1) == 0) continue;
      if (skip == 0) {
        color = bit;
        break;
      }
      --skip;
    }
  }
  const uint64_t index = color_page_counter_[color]++;
  CATDB_CHECK(index <= kPagePoolMask);  // 4 GiB per color class
  const uint64_t scrambled = (index * kPageScramble) & kPagePoolMask;
  return scrambled * num_colors_ + color;
}

void Machine::MapRange(uint64_t vaddr_begin, uint64_t vaddr_end,
                       uint64_t color_mask) {
  const uint64_t first_vpage = vaddr_begin >> simcache::kPageShift;
  const uint64_t last_vpage = (vaddr_end - 1) >> simcache::kPageShift;
  if (page_table_.size() <= last_vpage) {
    page_table_.resize(last_vpage + 1, 0);
  }
  for (uint64_t vpage = first_vpage; vpage <= last_vpage; ++vpage) {
    if (page_table_[vpage] == 0) {
      page_table_[vpage] = AssignPhysicalPage(color_mask) + 1;
    }
  }
}

uint64_t Machine::AllocVirtual(uint64_t bytes) {
  CATDB_CHECK(bytes > 0);
  if (alloc_color_mask_ != 0) {
    return AllocVirtualColored(bytes, alloc_color_mask_);
  }
  const uint64_t base = next_vaddr_;
  const uint64_t aligned =
      (bytes + simcache::kLineSize - 1) & ~(simcache::kLineSize - 1);
  next_vaddr_ += aligned + simcache::kLineSize;  // guard line between ranges
  MapRange(base, next_vaddr_, /*color_mask=*/0);
  return base;
}

uint64_t Machine::AllocVirtualColored(uint64_t bytes, uint64_t color_mask) {
  CATDB_CHECK(bytes > 0);
  CATDB_CHECK(color_mask != 0);
  // Page-align the range so the color restriction covers it exactly and no
  // neighbouring allocation shares its pages.
  next_vaddr_ =
      (next_vaddr_ + simcache::kPageBytes - 1) & ~(simcache::kPageBytes - 1);
  const uint64_t base = next_vaddr_;
  const uint64_t aligned =
      (bytes + simcache::kPageBytes - 1) & ~(simcache::kPageBytes - 1);
  next_vaddr_ += aligned;
  MapRange(base, next_vaddr_, color_mask);
  next_vaddr_ += simcache::kLineSize;  // guard line (maps with any color)
  return base;
}

uint64_t Machine::Translate(uint64_t vaddr) const {
  const uint64_t vpage = vaddr >> simcache::kPageShift;
  CATDB_DCHECK(vpage < page_table_.size() && page_table_[vpage] != 0);
  const uint64_t ppage = page_table_[vpage] - 1;
  return (ppage << simcache::kPageShift) |
         (vaddr & (simcache::kPageBytes - 1));
}

uint32_t Machine::PageColorOf(uint64_t vaddr) const {
  const uint64_t ppage = Translate(vaddr) >> simcache::kPageShift;
  return static_cast<uint32_t>(ppage % num_colors_);
}

void Machine::PointAccess(uint32_t core, uint64_t addr) {
  // Host profiling (selfperf breakdown leg only): the whole point chain —
  // memo validation, translation, the hierarchy walk — books under one
  // bucket, like the scalar chain it replaces. Unprofiled runs pay a single
  // predictable branch.
  simcache::HostCycleBreakdown* const hp = hierarchy_.host_profile();
  const uint64_t t0 = hp != nullptr ? simcache::HostTimerNow() : 0;
  AccessContext& ctx = access_ctx_[core];
  if (ctx.cat_gen != cat_.generation()) {
    ctx.clos = cat_.CoreClos(core);
    ctx.mask = cat_.CoreMask(core);
    ctx.cat_gen = cat_.generation();
  }
  const uint64_t vpage = addr >> simcache::kPageShift;
  if (ctx.vpage != vpage) {
    // Page mappings are immutable once assigned (MapRange only fills empty
    // entries), so a translated page base never goes stale.
    ctx.pline_base =
        simcache::LineOf(Translate(vpage << simcache::kPageShift));
    ctx.vpage = vpage;
  }
  const uint64_t pline =
      ctx.pline_base +
      ((addr & (simcache::kPageBytes - 1)) >> simcache::kLineShift);
  const simcache::AccessResult r = hierarchy_.AccessPoint(
      core, pline, clocks_[core], ctx.mask, ctx.clos);
  clocks_[core] += r.latency_cycles;
  if (hp != nullptr) {
    hp->scalar_access += simcache::HostTimerNow() - t0;
    hp->scalar_accesses += 1;
  }
}

void Machine::Access(uint32_t core, uint64_t addr, bool is_write) {
  (void)is_write;  // writes are timed like reads (write-allocate)
  if (!config_.hierarchy.reference_impl) {
    PointAccess(core, addr);
    return;
  }
  // Reference mode keeps the unmemoized chain: per-access CLOS resolution,
  // full translation, the hierarchy's reference walk.
  simcache::HostCycleBreakdown* const hp = hierarchy_.host_profile();
  const uint64_t t0 = hp != nullptr ? simcache::HostTimerNow() : 0;
  const cat::ClosId clos = cat_.CoreClos(core);
  const simcache::AccessResult r = hierarchy_.Access(
      core, Translate(addr), clocks_[core], cat_.CoreMask(core), clos);
  clocks_[core] += r.latency_cycles;
  if (hp != nullptr) {
    hp->scalar_access += simcache::HostTimerNow() - t0;
    hp->scalar_accesses += 1;
  }
}

void Machine::AccessRun(uint32_t core, uint64_t addr, uint64_t n_lines,
                        bool is_write) {
  if (n_lines == 0) return;
  if (!config_.batched_runs || config_.hierarchy.reference_impl) {
    // Scalar decomposition: same lines, same order, same per-access call
    // chain — this is the baseline leg the self-benchmark measures against
    // and the reference-mode path (whose caches have no fast-path twins).
    for (uint64_t i = 0; i < n_lines; ++i) {
      Access(core, addr + i * simcache::kLineSize, is_write);
    }
    return;
  }
  (void)is_write;  // writes are timed like reads (write-allocate)
  if (n_lines == 1) {
    // Single-line runs (point reads, short tail chunks) gain nothing from
    // run batching but would pay its per-run setup and counter flush; the
    // point-access chain is both cheaper and trivially result-identical.
    PointAccess(core, addr);
    return;
  }
  simcache::HostCycleBreakdown* const hp = hierarchy_.host_profile();
  // The CLOS/mask decode is charged to run_setup: it is per-run fixed cost
  // paid before any line is simulated, same bucket as the hierarchy's own
  // run prologue.
  const uint64_t t_decode = hp != nullptr ? simcache::HostTimerNow() : 0;
  const cat::ClosId clos = cat_.CoreClos(core);
  const uint64_t mask = cat_.CoreMask(core);
  if (hp != nullptr) hp->run_setup += simcache::HostTimerNow() - t_decode;
  uint64_t now = clocks_[core];
  uint64_t vline = addr >> simcache::kLineShift;
  uint64_t remaining = n_lines;
  while (remaining > 0) {
    // Within one virtual page the physical lines are contiguous (Translate
    // is affine in the page offset), so one translation covers the segment.
    const uint64_t in_page =
        simcache::kPageLines - (vline & (simcache::kPageLines - 1));
    const uint64_t seg = remaining < in_page ? remaining : in_page;
    const uint64_t t0 = hp != nullptr ? simcache::HostTimerNow() : 0;
    const uint64_t pline =
        simcache::LineOf(Translate(vline << simcache::kLineShift));
    if (hp != nullptr) hp->translate += simcache::HostTimerNow() - t0;
    now += hierarchy_.AccessRun(core, pline, seg, now, mask, clos);
    vline += seg;
    remaining -= seg;
  }
  clocks_[core] = now;
}

Result<uint64_t> Machine::LlcOccupancyBytes(const std::string& group) const {
  Result<cat::ClosId> clos = resctrl_.ClosOfGroup(group);
  if (!clos.ok()) return clos.status();
  return hierarchy_.clos_monitor(clos.value()).occupancy_bytes();
}

Result<uint64_t> Machine::MbmTotalBytes(const std::string& group) const {
  Result<cat::ClosId> clos = resctrl_.ClosOfGroup(group);
  if (!clos.ok()) return clos.status();
  return hierarchy_.clos_monitor(clos.value()).mbm_bytes();
}

Result<double> Machine::GroupLlcHitRatio(const std::string& group) const {
  Result<cat::ClosId> clos = resctrl_.ClosOfGroup(group);
  if (!clos.ok()) return clos.status();
  return hierarchy_.clos_monitor(clos.value()).llc.hit_ratio();
}

uint64_t Machine::MaxClock() const {
  uint64_t max = 0;
  for (uint64_t c : clocks_) max = max > c ? max : c;
  return max;
}

void Machine::ResetForRun() {
  for (auto& c : clocks_) c = 0;
  hierarchy_.ResetAll();
}

}  // namespace catdb::sim
