#ifndef CATDB_SIM_EPOCH_EXECUTOR_H_
#define CATDB_SIM_EPOCH_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "harness/thread_pool.h"
#include "sim/executor.h"
#include "sim/machine.h"

namespace catdb::sim {

/// Parallel single-cell executor: N-1 recording lanes run task Steps ahead
/// of the canonical schedule on host threads, staging every machine
/// operation into bounded per-core chunk queues; the applier thread (the
/// caller of RunUntil) runs the *unchanged* serial scheduling loop, where
/// "stepping" a core means replaying its next staged chunk against the
/// shared machine. All cache, DRAM, CAT, monitor, trace and scheduler side
/// effects therefore land in exactly the serial (cycle, core) order, and
/// reports/traces are byte-identical to sim_threads=1 (pinned by
/// tests/parallel_sim_test.cc).
///
/// The bounded queue depth is the epoch: a lane may run at most
/// kEpochChunkDepth Steps ahead of the applier before it blocks — the
/// backpressure is the epoch barrier. A literal fixed-cycle barrier cannot
/// be exact here (inclusive back-invalidation gives zero lookahead, and
/// LLC/DRAM latency feeds back into core clocks and thus the canonical
/// order); decoupling the timing-independent task logic from the timing
/// instead makes the window a pure performance knob.
///
/// Requirements on tasks (all engine jobs satisfy them):
///  * Step() must not read the core clock (ExecContext::now() CHECK-fails
///    in record mode) or any mutable machine state;
///  * host-visible shared state touched by concurrently recorded Steps
///    (e.g. the join bit vector, result sinks) must be commutative and
///    data-race-free (atomic OR/add).
class EpochExecutor : public Executor {
 public:
  /// Steps a lane may run ahead of the applier per core.
  static constexpr size_t kEpochChunkDepth = 64;

  /// `sim_threads` == 0 reads machine->config().sim_threads. The resolved
  /// value is the *total* host thread count (applier + lanes) and must be
  /// >= 2; use MakeExecutor to fall back to the serial Executor at 1.
  explicit EpochExecutor(Machine* machine, uint32_t sim_threads = 0);
  ~EpochExecutor() override;

  uint32_t num_lanes() const { return static_cast<uint32_t>(lanes_.size()); }

  /// Resumes the recording lanes, runs the shared scheduling loop, then
  /// parks the lanes again. Lanes only ever touch tasks inside this
  /// bracket, so after RunUntil returns the caller owns all task and
  /// source state exclusively (report collection, stream destruction) —
  /// staged-but-unapplied chunks are kept and replay on the next call.
  void RunUntil(uint64_t horizon) override;

 protected:
  bool StepTask(Task* task, uint32_t core) override;
  void OnTaskAssigned(uint32_t core, Task* task) override;

 private:
  /// Per-core staging channel. Guarded by the owning lane's mutex.
  struct CoreChannel {
    Task* task = nullptr;  // task being recorded; null = idle / tail staged
    std::deque<StagedChunk> chunks;  // recorded, not yet replayed
  };

  /// One recording lane: owns cores c with c % num_lanes() == id.
  struct Lane {
    std::mutex mu;
    std::condition_variable work_cv;  // lane waits for a task or for space
    std::condition_variable data_cv;  // applier waits for chunks / parking
    std::vector<uint32_t> cores;
    size_t next_core = 0;  // rotation cursor for fair recording
    uint64_t staging_cycles = 0;  // host-profile: record time (lane-local)
    bool stop = false;
    /// Lanes record only while a RunUntil call is in flight. `pause` is the
    /// applier's request; `parked` is the lane's acknowledgement that it is
    /// waiting and holds no task reference.
    bool pause = true;
    bool parked = false;
  };

  void LaneLoop(uint32_t lane_id);
  /// Clears `pause` and wakes every lane (RunUntil entry).
  void ResumeLanes();
  /// Sets `pause` and blocks until every lane is parked (RunUntil exit).
  void ParkLanes();
  /// First channel (rotating from lane.next_core) with a task to record and
  /// queue space; returns false if none. Caller holds lane.mu.
  bool PickCoreLocked(Lane& lane, uint32_t* core_out);

  Lane& LaneOf(uint32_t core) { return *lanes_[core % lanes_.size()]; }

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<CoreChannel> channels_;  // indexed by core
  harness::ThreadPool pool_;
};

/// Builds the executor a machine's configuration asks for: the serial
/// Executor at sim_threads == 1 (the differential oracle), the epoch
/// executor otherwise. All engine run loops construct through this.
std::unique_ptr<Executor> MakeExecutor(Machine* machine);

}  // namespace catdb::sim

#endif  // CATDB_SIM_EPOCH_EXECUTOR_H_
