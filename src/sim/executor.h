#ifndef CATDB_SIM_EXECUTOR_H_
#define CATDB_SIM_EXECUTOR_H_

#include <cstdint>
#include <queue>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/machine.h"

namespace catdb::sim {

/// A resumable unit of simulated work. Tasks are chunked state machines:
/// every Step() call processes a bounded amount of work (charging memory
/// accesses and compute to the context) and returns true while work remains.
/// Chunking keeps the discrete-event interleaving across cores fine-grained
/// and therefore the DRAM-queue ordering faithful.
class Task {
 public:
  virtual ~Task() = default;

  /// Processes one chunk. Returns false when the task has completed.
  virtual bool Step(ExecContext& ctx) = 0;

  /// Short human-readable name used as the span label in event traces;
  /// empty = anonymous task. Must stay valid while the task lives.
  virtual std::string_view label() const { return {}; }

  /// Earliest cycle at which the task may start (used for phase barriers).
  uint64_t ready_time() const { return ready_time_; }
  void set_ready_time(uint64_t t) { ready_time_ = t; }

  /// Work units (typically rows) completed so far, for fractional iteration
  /// accounting when a measurement horizon truncates a task. Steps report
  /// work through ExecContext::AddWork; the executor credits it here after
  /// the Step is *applied* to the machine — under the epoch executor that is
  /// replay time, not record time, so observers polling between RunUntil
  /// calls see values identical to the serial schedule.
  uint64_t work_done() const { return work_done_; }
  void CreditWork(uint64_t units) { work_done_ += units; }

 private:
  uint64_t ready_time_ = 0;
  uint64_t work_done_ = 0;
};

/// Supplies tasks to cores and learns about their completion. Implemented by
/// the engine's query streams.
///
/// Contract: a source that returns nullptr from NextTask may only start
/// returning tasks again after some task (of any source) finished — the
/// executor re-polls idle cores on every TaskFinished and at the start of
/// every RunUntil call, not on every scheduling step. All sources in this
/// repository (query streams with phase barriers, fixed task lists) satisfy
/// this; a time-triggered source would need an explicit barrier task.
class TaskSource {
 public:
  virtual ~TaskSource() = default;

  /// Returns the next task for an idle core, or nullptr if none is ready.
  virtual Task* NextTask(uint32_t core) = 0;

  /// Notifies that `task` (previously handed out for `core`) finished at
  /// cycle `clock`.
  virtual void TaskFinished(Task* task, uint32_t core, uint64_t clock) = 0;

  /// Hook invoked right before a task starts running on a core (used by the
  /// engine to apply CAT thread re-association at dispatch). The executor
  /// guarantees this fires only for tasks that actually begin a Step before
  /// the current horizon — a task pulled from the source but still waiting
  /// at the horizon is dispatched by the RunUntil call that first runs it.
  /// Default: no-op.
  virtual void TaskDispatched(Task* task, uint32_t core) {
    (void)task;
    (void)core;
  }
};

/// Deterministic discrete-event executor: always advances the runnable core
/// with the smallest clock. Ties break by core id, making runs reproducible.
///
/// Scheduling is event-driven: runnable cores live in a min-heap keyed on
/// (clock, core id), so picking the next core is O(log cores) instead of a
/// rescan of every core per step, and idle cores are re-polled only when a
/// task finishes (the only event that can unblock a phase barrier). The
/// simulated schedule — which core steps at which cycle — is identical to
/// the naive smallest-clock scan.
class Executor {
 public:
  explicit Executor(Machine* machine);
  virtual ~Executor() = default;

  /// Binds a task source to a core. Cores without a source stay idle.
  void Attach(uint32_t core, TaskSource* source);

  /// Runs until every core is idle (no current task and its source has
  /// none ready). Returns the maximum core clock reached.
  uint64_t RunUntilIdle();

  /// Runs until all runnable cores have clocks >= `horizon` or everything is
  /// idle. Cores never start a new Step at or beyond the horizon, so `Run`
  /// is suitable for fixed-duration throughput measurements. Repeated calls
  /// with increasing horizons resume seamlessly (the dynamic policy's
  /// interval loop). Virtual so the epoch executor can bracket the loop:
  /// its recording lanes run only *inside* a RunUntil call — on return no
  /// other thread touches tasks or sources, so callers may collect reports
  /// and destroy streams without synchronizing with the executor.
  virtual void RunUntil(uint64_t horizon);

 protected:
  /// Runs one Step of `task` on `core` against the machine and credits the
  /// work delta. The epoch executor overrides this to replay the next chunk
  /// a recording lane staged ahead; the scheduling loop around it — and
  /// therefore the canonical (cycle, core) order every side effect lands
  /// in — is shared and final.
  virtual bool StepTask(Task* task, uint32_t core);

  /// Fired when PollIdleCores hands `task` to `core` (before dispatch; the
  /// dispatch hook itself stays lazy). The epoch executor uses it to start
  /// a recording lane on the task.
  virtual void OnTaskAssigned(uint32_t core, Task* task) {
    (void)core;
    (void)task;
  }

  Machine* machine() const { return machine_; }

 private:
  struct CoreState {
    TaskSource* source = nullptr;
    Task* current = nullptr;
    /// TaskDispatched has fired for `current`. Dispatch is lazy: it is
    /// deferred until the task is first scheduled inside the horizon, so
    /// dispatch side effects (CLOS re-association charges) land in the
    /// interval the task actually starts in.
    bool dispatched = false;
  };

  /// Pulls a task for every idle core whose source has one ready, in
  /// ascending core-id order (the order the per-step scan used to poll in),
  /// and enqueues the core at max(clock, ready_time).
  void PollIdleCores();

  // (clock, core): std::greater turns the queue into a min-heap whose
  // ordering — smallest clock first, ties to the lowest core id — is
  // exactly the executor's scheduling rule.
  using ReadyEntry = std::pair<uint64_t, uint32_t>;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                      std::greater<ReadyEntry>>
      ready_;

  Machine* machine_;
  std::vector<CoreState> cores_;
};

}  // namespace catdb::sim

#endif  // CATDB_SIM_EXECUTOR_H_
