#ifndef CATDB_SIM_EXECUTOR_H_
#define CATDB_SIM_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "sim/machine.h"

namespace catdb::sim {

/// A resumable unit of simulated work. Tasks are chunked state machines:
/// every Step() call processes a bounded amount of work (charging memory
/// accesses and compute to the context) and returns true while work remains.
/// Chunking keeps the discrete-event interleaving across cores fine-grained
/// and therefore the DRAM-queue ordering faithful.
class Task {
 public:
  virtual ~Task() = default;

  /// Processes one chunk. Returns false when the task has completed.
  virtual bool Step(ExecContext& ctx) = 0;

  /// Earliest cycle at which the task may start (used for phase barriers).
  uint64_t ready_time() const { return ready_time_; }
  void set_ready_time(uint64_t t) { ready_time_ = t; }

 private:
  uint64_t ready_time_ = 0;
};

/// Supplies tasks to cores and learns about their completion. Implemented by
/// the engine's query streams.
class TaskSource {
 public:
  virtual ~TaskSource() = default;

  /// Returns the next task for an idle core, or nullptr if none is ready.
  /// Called repeatedly; must be cheap.
  virtual Task* NextTask(uint32_t core) = 0;

  /// Notifies that `task` (previously handed out for `core`) finished at
  /// cycle `clock`.
  virtual void TaskFinished(Task* task, uint32_t core, uint64_t clock) = 0;

  /// Hook invoked right before a task starts running on a core (used by the
  /// engine to apply CAT thread re-association at dispatch). Default: no-op.
  virtual void TaskDispatched(Task* task, uint32_t core) {
    (void)task;
    (void)core;
  }
};

/// Deterministic discrete-event executor: always advances the runnable core
/// with the smallest clock. Ties break by core id, making runs reproducible.
class Executor {
 public:
  explicit Executor(Machine* machine);

  /// Binds a task source to a core. Cores without a source stay idle.
  void Attach(uint32_t core, TaskSource* source);

  /// Runs until every core is idle (no current task and its source has
  /// none ready). Returns the maximum core clock reached.
  uint64_t RunUntilIdle();

  /// Runs until all runnable cores have clocks >= `horizon` or everything is
  /// idle. Cores never start a new Step at or beyond the horizon, so `Run`
  /// is suitable for fixed-duration throughput measurements.
  void RunUntil(uint64_t horizon);

 private:
  struct CoreState {
    TaskSource* source = nullptr;
    Task* current = nullptr;
  };

  // Tries to give an idle core work; returns true if it now has a task.
  bool Replenish(uint32_t core);

  Machine* machine_;
  std::vector<CoreState> cores_;
};

}  // namespace catdb::sim

#endif  // CATDB_SIM_EXECUTOR_H_
