#!/usr/bin/env python3
"""CI validator for the checked-in catdb.scenario/v1 files (scenarios/).

Structural checks mirroring the strict C++ parser (src/plan/scenario.cc) so
an editing mistake fails in CI before any binary runs:
  * schema tag must be exactly catdb.scenario/v1
  * `kind` selects exactly one sweep section; the section must be present
    and no other sweep section may appear
  * datasets/plans must be nonempty arrays of objects with unique names
  * every plan-node dataset reference must resolve
  * ratio fields ("dict_ratio", "pk_ratio", ...) must be [num, den] integer
    pairs with a nonzero denominator (exact-fraction rule: doubles never
    appear in scenario files)

The C++ parser remains the authority (scenario_runner refuses anything it
cannot validate); this script exists so `git push` feedback arrives in
seconds, and so non-C++ tooling has a reference for the format.

Usage: check_scenario.py <scenario.json> [...]
"""

import json
import sys

SCHEMA = "catdb.scenario/v1"
KIND_SECTIONS = {
    "latency_sweep": "latency_sweep",
    "pair_sweep": "pair_sweep",
    "serving_sweep": "serving_sweep",
}
FRACTION_KEYS = ("dict_ratio", "pk_ratio", "big_dict_ratio",
                 "max_rejected_ratio")


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fractions(value, path):
    """Every known ratio key must hold a [num, den] integer pair (den != 0);
    `loads`/`smoke_loads` are arrays of such pairs."""
    def is_pair(v):
        return (isinstance(v, list) and len(v) == 2 and
                all(isinstance(x, int) and not isinstance(x, bool)
                    for x in v))

    if isinstance(value, dict):
        for k, v in value.items():
            p = f"{path}.{k}"
            if k in FRACTION_KEYS:
                if not is_pair(v) or v[1] == 0:
                    fail(f"{p}: expected a [numerator, denominator] integer "
                         f"pair with nonzero denominator")
            elif k in ("loads", "smoke_loads"):
                if not isinstance(v, list) or not v:
                    fail(f"{p}: expected a nonempty array")
                for i, e in enumerate(v):
                    if not is_pair(e) or e[1] == 0:
                        fail(f"{p}[{i}]: expected a [numerator, denominator] "
                             f"integer pair with nonzero denominator")
            else:
                check_fractions(v, p)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            check_fractions(v, f"{path}[{i}]")


def named_objects(doc, path, key):
    """`datasets`/`plans` arrays: may be empty (a serving sweep has
    neither), but every entry needs a unique nonempty name."""
    items = doc.get(key)
    if not isinstance(items, list):
        fail(f"{path}.{key}: expected an array")
    names = []
    for i, item in enumerate(items):
        if not isinstance(item, dict):
            fail(f"{path}.{key}[{i}]: expected an object")
        name = item.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{path}.{key}[{i}].name: expected a nonempty string")
        if name in names:
            fail(f"{path}.{key}[{i}].name: duplicate name {name!r}")
        names.append(name)
    return items, names


def check(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except ValueError as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("benchmark"), str) or not doc["benchmark"]:
        fail(f"{path}: $.benchmark must be a nonempty string")

    kind = doc.get("kind")
    if kind not in KIND_SECTIONS:
        fail(f"{path}: $.kind is {kind!r}, want one of "
             f"{sorted(KIND_SECTIONS)}")
    section = KIND_SECTIONS[kind]
    if not isinstance(doc.get(section), dict):
        fail(f"{path}: $.{section} section missing for kind {kind!r}")
    for other in KIND_SECTIONS.values():
        if other != section and other in doc:
            fail(f"{path}: $.{other} present but kind is {kind!r}")

    datasets, dataset_names = named_objects(doc, f"{path}: $", "datasets")
    plans, _ = named_objects(doc, f"{path}: $", "plans")
    for pi, plan in enumerate(plans):
        nodes = plan.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            fail(f"{path}: $.plans[{pi}].nodes: expected a nonempty array")
        for ni, node in enumerate(nodes):
            ds = node.get("dataset")
            if ds is not None and ds not in dataset_names:
                fail(f"{path}: $.plans[{pi}].nodes[{ni}].dataset: references "
                     f"unknown dataset {ds!r}")

    check_fractions(doc, "$")
    print(f"ok: {path} ({kind}, {len(datasets)} datasets, "
          f"{len(plans)} plans)")


def main():
    if len(sys.argv) < 2:
        fail(f"usage: {sys.argv[0]} <scenario.json> [...]")
    for path in sys.argv[1:]:
        check(path)


if __name__ == "__main__":
    main()
