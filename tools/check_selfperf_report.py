#!/usr/bin/env python3
"""CI validator for the selfperf_sim artifacts.

Checks three files:
  1. the catdb.report/v1 run report (--report-out): must carry the
     per-component host-cycle breakdown scalars for every workload;
  2. the selfperf summary JSON (first positional output): every workload
     entry must embed a host_cycle_breakdown object with the full component
     set and self-consistent counters;
  3. the parallel-scaling JSON (second positional output): must carry
     `host_cores` and the top-level `conclusive` flag plus both scaling
     sections (`sweep_harness` for --jobs, `sim_threads` for the epoch
     executor), each with its own `conclusive` flag and an explicit
     `skipped_oversubscribed` annotation. Single-core hosts produce
     inconclusive scaling data; that is reported as a WARNING, never a
     silent pass.

Every `host_cycle_breakdown` must additionally be self-consistent: all
buckets non-negative, and their sum no larger than the emitted
`attributed_total` (a bucket overflowing past the total means a timer
wrapped or a component was double-counted).

With --baseline=<BENCH_selfperf.json> the checker also acts as a
throughput-regression gate: each workload's fast-leg
`accesses_per_second` must be at least --min-ratio (default 0.5) times
the baseline file's value for the same workload. CI runs this against
the checked-in BENCH_selfperf.json with a loose ratio — CI hosts are
slower and noisier than the bench host, so the gate is sized to catch a
broken fast path (order-of-magnitude regressions), not small drift.

Usage: check_selfperf_report.py <report.json> <selfperf.json> <parallel.json>
           [--baseline=<bench.json>] [--min-ratio=<x>]
"""

import json
import sys

BREAKDOWN_COMPONENTS = [
    "l1_lookup",
    "l2_lookup",
    "llc_lookup",
    "victim_fill",
    "prefetcher",
    "dram",
    "pending_table",
    "shadow_profiler",
    "monitor_flush",
    "translate",
    "scalar_access",
    "run_setup",
    "staging",
    "barrier_wait",
    "run_other",
]

WORKLOADS = ["fig01_oltp_olap", "fig11_tpch_q1"]


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_report(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "catdb.report/v1":
        fail(f"{path}: schema is {report.get('schema')!r}")
    results = report.get("results", [])
    names = {r.get("name") for r in results}
    for w in WORKLOADS:
        for metric in ("accesses_per_second", "speedup_vs_scalar_access_path"):
            if f"{w}/{metric}" not in names:
                fail(f"{path}: missing scalar {w}/{metric}")
        for comp in BREAKDOWN_COMPONENTS:
            if f"{w}/host_cycles/{comp}" not in names:
                fail(f"{path}: missing scalar {w}/host_cycles/{comp}")
    print(f"ok: {path} carries breakdown scalars for {len(WORKLOADS)} workloads")


def check_selfperf(path):
    with open(path) as f:
        doc = json.load(f)
    workloads = doc.get("workloads")
    if not isinstance(workloads, list):
        fail(f"{path}: no workloads array")
    by_name = {e.get("name"): e for e in workloads}
    for w in WORKLOADS:
        entry = by_name.get(w)
        if entry is None:
            fail(f"{path}: missing workload {w}")
        b = entry.get("host_cycle_breakdown")
        if not isinstance(b, dict):
            fail(f"{path}: {w} missing host_cycle_breakdown")
        bucket_sum = 0
        for comp in BREAKDOWN_COMPONENTS:
            v = b.get(comp)
            if not isinstance(v, int):
                fail(f"{path}: {w} breakdown missing component {comp}")
            if v < 0:
                fail(f"{path}: {w} breakdown bucket {comp} is negative ({v})")
            bucket_sum += v
        total = b.get("attributed_total")
        if not isinstance(total, int) or total < 0:
            fail(f"{path}: {w} breakdown missing `attributed_total`")
        if bucket_sum > total:
            fail(f"{path}: {w} breakdown buckets sum to {bucket_sum} > "
                 f"attributed_total {total} (timer wrap or double count)")
        for counter in ("runs", "run_lines", "scalar_accesses"):
            if not isinstance(b.get(counter), int) or b[counter] <= 0:
                fail(f"{path}: {w} breakdown counter {counter} not positive")
    print(f"ok: {path} embeds complete host_cycle_breakdown objects")


def check_baseline(path, baseline_path, min_ratio):
    """Fast-leg accesses_per_second must hold at least min_ratio x the
    checked-in baseline's, per workload."""
    with open(path) as f:
        doc = json.load(f)
    with open(baseline_path) as f:
        base = json.load(f)
    by_name = {e.get("name"): e for e in doc.get("workloads", [])}
    base_by_name = {e.get("name"): e for e in base.get("workloads", [])}
    for w in WORKLOADS:
        entry = by_name.get(w)
        base_entry = base_by_name.get(w)
        if entry is None or base_entry is None:
            fail(f"baseline gate: workload {w} missing from "
                 f"{path if entry is None else baseline_path}")
        cur = entry.get("fast_event_executor", {}).get("accesses_per_second")
        ref = base_entry.get("fast_event_executor", {}).get(
            "accesses_per_second")
        if not isinstance(cur, (int, float)) or cur <= 0:
            fail(f"{path}: {w} has no positive fast-leg accesses_per_second")
        if not isinstance(ref, (int, float)) or ref <= 0:
            fail(f"{baseline_path}: {w} has no positive fast-leg "
                 "accesses_per_second")
        ratio = cur / ref
        if ratio < min_ratio:
            fail(f"{path}: {w} fast-leg accesses_per_second {cur:.0f} is "
                 f"{ratio:.3f}x the baseline {ref:.0f} "
                 f"(gate: >= {min_ratio}x of {baseline_path})")
        print(f"ok: {w} fast leg {cur:.0f} acc/s = {ratio:.2f}x baseline "
              f"(gate {min_ratio}x)")


def check_scaling_section(path, name, section):
    """A scaling section must say whether it is conclusive and which points
    it skipped as oversubscribed — a single-row section with neither flag
    reads like a measured 1.0x ceiling."""
    if not isinstance(section, dict):
        fail(f"{path}: missing `{name}` section")
    if not isinstance(section.get("conclusive"), bool):
        fail(f"{path}: {name} missing boolean `conclusive` flag")


def check_parallel(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc.get("host_cores"), int):
        fail(f"{path}: missing integer `host_cores`")
    if not isinstance(doc.get("conclusive"), bool):
        fail(f"{path}: missing boolean `conclusive` flag")
    harness = doc.get("sweep_harness")
    check_scaling_section(path, "sweep_harness", harness)
    if not isinstance(harness.get("skipped_oversubscribed"), list):
        fail(f"{path}: sweep_harness missing `skipped_oversubscribed` list")
    if harness.get("reports_byte_identical") is not True:
        fail(f"{path}: sweep_harness reports not byte-identical")
    sim = doc.get("sim_threads")
    check_scaling_section(path, "sim_threads", sim)
    if sim.get("digests_byte_identical") is not True:
        fail(f"{path}: sim_threads digests not byte-identical")
    workloads = sim.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail(f"{path}: sim_threads has no workloads")
    for w in workloads:
        if not isinstance(w.get("skipped_oversubscribed"), list):
            fail(f"{path}: sim_threads workload {w.get('name')!r} missing "
                 "`skipped_oversubscribed` list")
        if not isinstance(w.get("runs"), list) or not w["runs"]:
            fail(f"{path}: sim_threads workload {w.get('name')!r} has no runs")
    for name in ("sweep_harness", "sim_threads"):
        if not doc[name]["conclusive"]:
            print(f"WARNING: {path}: `{name}` scaling is inconclusive "
                  f"(host_cores={doc['host_cores']}; oversubscribed points "
                  "skipped) — numbers are not a scaling measurement")
    print(f"ok: {path} host_cores={doc['host_cores']} "
          f"conclusive={doc['conclusive']}")


def main(argv):
    baseline = None
    min_ratio = 0.5
    positional = []
    for arg in argv[1:]:
        if arg.startswith("--baseline="):
            baseline = arg[len("--baseline="):]
        elif arg.startswith("--min-ratio="):
            try:
                min_ratio = float(arg[len("--min-ratio="):])
            except ValueError:
                fail(f"--min-ratio expects a number, got {arg!r}")
            if min_ratio <= 0:
                fail("--min-ratio must be positive")
        else:
            positional.append(arg)
    if len(positional) != 3:
        fail(f"usage: {argv[0]} <report.json> <selfperf.json> <parallel.json>"
             " [--baseline=<bench.json>] [--min-ratio=<x>]")
    check_report(positional[0])
    check_selfperf(positional[1])
    check_parallel(positional[2])
    if baseline is not None:
        check_baseline(positional[1], baseline, min_ratio)
    print("selfperf artifacts OK")


if __name__ == "__main__":
    main(sys.argv)
