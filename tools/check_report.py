#!/usr/bin/env python3
"""CI validator for catdb.report/v1 artifacts.

Rejects the silent-corruption modes a plain `json.tool` round-trip lets
through:
  * JsonWriter serializes non-finite doubles (inf/NaN from a divide-by-zero
    upstream) as `null` — a syntactically valid report with a poisoned
    scalar. Any `null`, `NaN`, `Infinity` or `-Infinity` anywhere in the
    document fails the check.
  * A report that ran zero cells ("results": []) is vacuous and fails.
  * A wrong or missing schema tag fails, so consumers never parse a layout
    they do not understand.
  * `"kind": "scenario"` result entries (emitted by scenario-file runs) must
    carry a complete summary object — scenario name, sweep kind, positive
    dataset/plan/cell counts, and an `fnv1a:`-prefixed 16-hex-digit digest of
    the canonical scenario text — so a truncated or hand-edited section
    cannot masquerade as a scenario provenance stamp.

Scaling artifacts (BENCH_parallel.json: a top-level `benchmark` name plus
`conclusive` flags instead of a schema tag) are validated too: the same
null/NaN rejection applies, and any scaling section whose `conclusive` flag
is false is reported as a WARNING instead of a silent "ok" — a 1-core CI
container cannot measure scaling, and the check's output must say so.

Usage: check_report.py <report.json> [<report.json> ...]
"""

import json
import re
import sys

SCHEMA = "catdb.report/v1"

SWEEP_KINDS = ("latency_sweep", "pair_sweep", "serving_sweep")
DIGEST_RE = re.compile(r"^fnv1a:[0-9a-f]{16}$")


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def reject_constant(token):
    # json.load calls this for the bare tokens NaN/Infinity/-Infinity, which
    # the Python parser would otherwise happily accept.
    raise ValueError(f"non-finite JSON constant {token!r}")


def find_null(value, path):
    """Returns the JSON path of the first null in `value`, or None."""
    if value is None:
        return path
    if isinstance(value, dict):
        for k, v in value.items():
            found = find_null(v, f"{path}.{k}")
            if found:
                return found
    elif isinstance(value, list):
        for i, v in enumerate(value):
            found = find_null(v, f"{path}[{i}]")
            if found:
                return found
    return None


def find_inconclusive(value, path):
    """Returns the JSON paths of every object whose `conclusive` is false."""
    found = []
    if isinstance(value, dict):
        if value.get("conclusive") is False:
            found.append(path)
        for k, v in value.items():
            found.extend(find_inconclusive(v, f"{path}.{k}"))
    elif isinstance(value, list):
        for i, v in enumerate(value):
            found.extend(find_inconclusive(v, f"{path}[{i}]"))
    return found


def check_scaling(path, doc):
    """BENCH_parallel-style scaling artifact: no schema tag, but `benchmark`
    and `conclusive` at the top level. Inconclusive sections warn — they are
    legitimate on small hosts, but must never pass silently as if a scaling
    claim had been measured."""
    if not isinstance(doc.get("conclusive"), bool):
        fail(f"{path}: scaling artifact missing boolean `conclusive`")
    inconclusive = find_inconclusive(doc, "$")
    if inconclusive:
        cores = doc.get("host_cores")
        for where in inconclusive:
            print(f"WARNING: {path}: scaling section {where} is inconclusive "
                  f"(host_cores={cores}) — not a measured scaling ceiling")
    print(f"ok: {path} (scaling artifact, conclusive={doc['conclusive']})")


def check_scenario_entry(path, i, entry):
    where = f"{path}: results[{i}]"
    summary = entry.get("scenario")
    if not isinstance(summary, dict):
        fail(f"{where}: scenario entry without a `scenario` object")
    for key in ("scenario", "sweep_kind", "digest"):
        if not isinstance(summary.get(key), str) or not summary[key]:
            fail(f"{where}: scenario.{key} must be a nonempty string")
    if summary["sweep_kind"] not in SWEEP_KINDS:
        fail(f"{where}: scenario.sweep_kind is {summary['sweep_kind']!r}, "
             f"want one of {SWEEP_KINDS}")
    # A serving sweep has no datasets/plans, so those may be 0; a scenario
    # that ran zero cells is vacuous.
    for key, lo in (("datasets", 0), ("plans", 0), ("cells", 1)):
        n = summary.get(key)
        if not isinstance(n, int) or isinstance(n, bool) or n < lo:
            fail(f"{where}: scenario.{key} must be an integer >= {lo}")
    if not DIGEST_RE.match(summary["digest"]):
        fail(f"{where}: scenario.digest {summary['digest']!r} does not match "
             f"fnv1a:<16 hex digits>")


def check(path):
    try:
        with open(path) as f:
            report = json.load(f, parse_constant=reject_constant)
    except ValueError as e:
        fail(f"{path}: {e}")
    null_path = find_null(report, "$")
    if null_path:
        fail(f"{path}: null at {null_path} (a non-finite double upstream?)")
    if "schema" not in report and "benchmark" in report and \
            "conclusive" in report:
        check_scaling(path, report)
        return
    if report.get("schema") != SCHEMA:
        fail(f"{path}: schema is {report.get('schema')!r}, want {SCHEMA!r}")
    results = report.get("results")
    if not isinstance(results, list) or not results:
        fail(f"{path}: no results")
    scenarios = 0
    for i, entry in enumerate(results):
        if isinstance(entry, dict) and entry.get("kind") == "scenario":
            check_scenario_entry(path, i, entry)
            scenarios += 1
    suffix = f", {scenarios} scenario section(s)" if scenarios else ""
    print(f"ok: {path} ({len(results)} results{suffix})")


def main():
    if len(sys.argv) < 2:
        fail(f"usage: {sys.argv[0]} <report.json> [...]")
    for path in sys.argv[1:]:
        check(path)


if __name__ == "__main__":
    main()
